"""The elimination step: ``dce`` and ``fce`` (paper Section 5.2).

After computing the greatest solution of the dead (faint) variable
equation system of Table 1, the transformation is very simple:

    *Process every basic block by successively eliminating all
    assignments whose left-hand side variables are dead (faint)
    immediately after them.*

Eliminations may only ever *reduce* the potential of run-time errors
(footnote 3) — the remaining instructions behave exactly as before.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..ir.cfg import FlowGraph
from ..ir.stmts import Assign
from ..dataflow.dead import analyze_dead
from ..dataflow.faint import analyze_faint

__all__ = ["EliminationReport", "dead_code_elimination", "faint_code_elimination"]


@dataclass
class EliminationReport:
    """What one elimination pass removed."""

    #: ``(block, original index, pattern)`` of each removed assignment.
    removed: List[Tuple[str, int, str]] = field(default_factory=list)
    #: Work done by the controlling analysis (transfer evaluations).
    analysis_work: int = 0

    @property
    def changed(self) -> bool:
        return bool(self.removed)

    def __len__(self) -> int:
        return len(self.removed)


def _eliminate(graph: FlowGraph, after_each, universe) -> EliminationReport:
    """Shared elimination driver given a per-block "dead-after" oracle."""
    report = EliminationReport()
    for node in graph.nodes():
        statements = graph.statements(node)
        if not statements:
            continue
        after = after_each(node)
        kept = []
        for index, stmt in enumerate(statements):
            if (
                isinstance(stmt, Assign)
                and stmt.lhs in universe
                and universe.test(after[index], stmt.lhs)
            ):
                report.removed.append((node, index, stmt.pattern()))
            else:
                kept.append(stmt)
        if len(kept) != len(statements):
            graph.set_statements(node, kept)
    return report


def dead_code_elimination(graph: FlowGraph) -> EliminationReport:
    """One ``dce`` pass: remove assignments whose lhs is dead after them.

    Mutates ``graph`` in place and reports the removals.
    """
    dead = analyze_dead(graph)
    report = _eliminate(graph, dead.after_each, dead.universe)
    report.analysis_work = dead.result.transfer_evaluations
    return report


def faint_code_elimination(graph: FlowGraph, method: str = "instruction") -> EliminationReport:
    """One ``fce`` pass: remove assignments whose lhs is faint after them.

    Faint code elimination is strictly more powerful than dead code
    elimination (Figure 9) and, unlike it, removes mutually-dependent
    useless assignments simultaneously (Figure 12 is a *first-order*
    effect here).
    """
    faint = analyze_faint(graph, method=method)
    report = _eliminate(graph, faint.after_each, faint.universe)
    report.analysis_work = faint.transfer_evaluations
    return report
