"""The global PDE / PFE algorithm (paper Sections 5.1, 5.4).

``pde`` (``pfe``) alternates two procedures until the program
stabilises:

* ``dce`` (``fce``) — the elimination step controlled by the dead
  (faint) variable analysis of Table 1, and
* ``ask`` — the assignment sinking step controlled by the delayability
  analysis of Table 2.

The exhaustive alternation is what captures the second-order effects of
Section 4 (sinking-elimination, sinking-sinking, elimination-sinking,
elimination-elimination); a single round of each step — the
``single_pass`` baseline — misses them.

The driver records the statistics Section 6 reasons about:

* ``r`` — number of component-transformation applications,
* ``w`` — the maximal factor by which the instruction count grew
  during the run (expected ``O(1)`` in practice, Section 6.2),
* per-step analysis work (transfer evaluations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..ir.cfg import FlowGraph
from ..ir.splitting import split_critical_edges
from ..ir.validate import validate
from .eliminate import EliminationReport, dead_code_elimination, faint_code_elimination
from .sink import SinkingReport, assignment_sinking

__all__ = ["OptimizationResult", "OptimizationStats", "pde", "pfe", "optimize"]


class NonTermination(RuntimeError):
    """The alternation failed to stabilise within the round limit.

    Section 6.3 bounds the number of component applications by ``i · b``;
    the driver's default limit is far above that, so hitting it indicates
    a bug rather than a big program.
    """


@dataclass
class RoundRecord:
    """Reports of the two steps of one global iteration."""

    elimination: EliminationReport
    sinking: SinkingReport
    #: Program snapshots after each step (only with ``trace=True``).
    after_elimination: Optional[FlowGraph] = None
    after_sinking: Optional[FlowGraph] = None


@dataclass
class OptimizationStats:
    """Run statistics matching the parameters of Section 6."""

    #: The paper's ``r``: applications of component transformations.
    component_applications: int = 0
    #: Global rounds executed (each round = one elimination + one sinking).
    rounds: int = 0
    #: Total assignments eliminated across all elimination passes.
    eliminated: int = 0
    #: Total candidate removals / instance insertions by sinking passes.
    sunk_removed: int = 0
    sunk_inserted: int = 0
    #: Instruction counts: of the (edge-split) input, the maximum reached
    #: at any intermediate stage, and of the final program.
    original_instructions: int = 0
    peak_instructions: int = 0
    final_instructions: int = 0
    #: Total transfer evaluations across every controlling analysis.
    analysis_work: int = 0
    history: List[RoundRecord] = field(default_factory=list)

    @property
    def code_growth_factor(self) -> float:
        """The paper's ``w``: peak size relative to the input size."""
        if self.original_instructions == 0:
            return 1.0
        return self.peak_instructions / self.original_instructions


@dataclass
class OptimizationResult:
    """The outcome of running ``pde`` / ``pfe`` on a program."""

    #: The input after critical-edge splitting — the member of the
    #: paper's universe ``𝒢`` every result must be compared against.
    original: FlowGraph
    #: The optimised program.
    graph: FlowGraph
    stats: OptimizationStats
    variant: str  # "pde" | "pfe"
    #: Set by :func:`repro.core.verify.verified_pde` when the result has
    #: been certified against the oracles.
    verification: Optional[object] = None


def _run(
    graph: FlowGraph,
    variant: str,
    max_rounds: Optional[int],
    faint_method: str,
    trace: bool = False,
) -> OptimizationResult:
    split = split_critical_edges(graph)
    validate(split, require_split=True)
    work = split.copy()

    stats = OptimizationStats()
    stats.original_instructions = split.instruction_count()
    stats.peak_instructions = stats.original_instructions

    limit = max_rounds if max_rounds is not None else 4 * (split.instruction_count() + 2) * len(split)
    previous = None
    while True:
        if stats.rounds >= limit:
            raise NonTermination(
                f"{variant} did not stabilise within {limit} rounds"
            )
        if variant == "pfe":
            elimination = faint_code_elimination(work, method=faint_method)
        else:
            elimination = dead_code_elimination(work)
        stats.peak_instructions = max(stats.peak_instructions, work.instruction_count())
        after_elimination = work.copy() if trace else None

        sinking = assignment_sinking(work)
        stats.peak_instructions = max(stats.peak_instructions, work.instruction_count())
        after_sinking = work.copy() if trace else None

        stats.rounds += 1
        stats.component_applications += 2
        stats.eliminated += len(elimination)
        stats.sunk_removed += len(sinking.removed)
        stats.sunk_inserted += len(sinking.inserted)
        stats.analysis_work += elimination.analysis_work + sinking.analysis_work
        stats.history.append(
            RoundRecord(elimination, sinking, after_elimination, after_sinking)
        )

        fingerprint = work.fingerprint()
        if not elimination.changed and not sinking.changed:
            break
        if fingerprint == previous:
            break  # text-level fixpoint (reinsertion at identical spots)
        previous = fingerprint

    stats.final_instructions = work.instruction_count()
    return OptimizationResult(original=split, graph=work, stats=stats, variant=variant)


def pde(
    graph: FlowGraph,
    max_rounds: Optional[int] = None,
    trace: bool = False,
) -> OptimizationResult:
    """Partial **dead** code elimination: exhaustive ``dce`` / ``ask``
    alternation (Theorem 5.2: the result is optimal in ``𝒢_PDE``).

    The input graph is not mutated; critical edges are split up front
    (Section 2.1).  With ``trace=True`` every round's intermediate
    programs are kept in ``result.stats.history`` (the CLI's ``explain``
    command renders them).
    """
    return _run(graph, "pde", max_rounds, faint_method="instruction", trace=trace)


def pfe(
    graph: FlowGraph,
    max_rounds: Optional[int] = None,
    faint_method: str = "instruction",
    trace: bool = False,
) -> OptimizationResult:
    """Partial **faint** code elimination: exhaustive ``fce`` / ``ask``
    alternation (Theorem 5.2: the result is optimal in ``𝒢_PFE``)."""
    return _run(graph, "pfe", max_rounds, faint_method=faint_method, trace=trace)


def optimize(graph: FlowGraph, variant: str = "pde", **kwargs) -> OptimizationResult:
    """Dispatch helper: ``variant`` is ``"pde"`` or ``"pfe"``."""
    if variant == "pde":
        return pde(graph, **kwargs)
    if variant == "pfe":
        return pfe(graph, **kwargs)
    raise ValueError(f"unknown variant {variant!r} (expected 'pde' or 'pfe')")
