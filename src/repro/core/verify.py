"""Self-checking optimisation — every oracle, in one call.

:func:`verified_pde` / :func:`verified_pfe` run the optimiser and then
*certify* the result before returning it:

1. **admissibility** — each sinking pass of the run satisfies
   Definition 3.2 (independent path analysis over the traced
   intermediate programs);
2. **semantics** — interpreter replay over randomised branch decisions,
   honouring the footnote 3 error asymmetry;
3. **never slower** — executed-assignment counts never increase on any
   replayed execution;
4. **path-wise improvement** — the result is better-or-equal in the
   Definition 3.6 sense (bounded path enumeration; skipped for graphs
   whose path family is too large to enumerate);
5. **idempotence** — re-running the optimiser changes nothing.

Any violation raises :class:`VerificationError` naming the failed
oracle.  This is the paranoid entry point: several times the cost, for
callers that want the paper's theorems actively checked on their
program rather than trusted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..ir.cfg import FlowGraph
from .admissibility import AdmissibilityViolation, check_sinking_admissible
from .driver import OptimizationResult, pde, pfe
from .optimality import compare

__all__ = ["VerificationError", "VerificationReport", "verified_pde", "verified_pfe"]


class VerificationError(AssertionError):
    """An oracle rejected the optimisation result."""

    def __init__(self, oracle: str, detail: str) -> None:
        super().__init__(f"[{oracle}] {detail}")
        self.oracle = oracle


@dataclass
class VerificationReport:
    """Which oracles ran and what they checked."""

    oracles: List[str] = field(default_factory=list)
    replayed_executions: int = 0
    paths_compared: bool = False


def verified_pde(
    graph: FlowGraph,
    replay_seeds: int = 10,
    max_paths: int = 20_000,
) -> OptimizationResult:
    """Run ``pde`` and certify the result (see module docstring)."""
    return _verified(graph, "pde", replay_seeds, max_paths)


def verified_pfe(
    graph: FlowGraph,
    replay_seeds: int = 10,
    max_paths: int = 20_000,
) -> OptimizationResult:
    """Run ``pfe`` and certify the result."""
    return _verified(graph, "pfe", replay_seeds, max_paths)


def _verified(
    graph: FlowGraph, variant: str, replay_seeds: int, max_paths: int
) -> OptimizationResult:
    run = pde if variant == "pde" else pfe
    result = run(graph, trace=True)
    report = VerificationReport()

    # 1. Admissibility of every traced sinking pass (checked against the
    # program the pass actually ran on: the post-elimination snapshot).
    for number, record in enumerate(result.stats.history, start=1):
        try:
            check_sinking_admissible(record.after_elimination, record.sinking)
        except AdmissibilityViolation as violation:
            raise VerificationError(
                "admissibility", f"round {number}: {violation}"
            ) from violation
    report.oracles.append("admissibility")

    # 2 + 3. Replay semantics and speed.
    report.replayed_executions = _replay(result, replay_seeds)
    report.oracles += ["semantics", "never-slower"]

    # 4. Path-wise improvement, when enumerable.
    try:
        outcome = compare(result.graph, result.original, max_edge_repeats=1)
    except RuntimeError:
        outcome = None  # too many paths; replay already covered behaviour
    if outcome is not None:
        if not outcome.first_better_or_equal:
            path, pattern, a, b = outcome.witness
            raise VerificationError(
                "optimality",
                f"pattern {pattern!r} occurs {a} > {b} times on path {path}",
            )
        report.paths_compared = True
        report.oracles.append("optimality")

    # 5. Idempotence.
    again = run(result.graph)
    if again.graph != result.graph:
        raise VerificationError("idempotence", "a second run changed the program")
    report.oracles.append("idempotence")

    result.verification = report
    return result


def _replay(result: OptimizationResult, replay_seeds: int) -> int:
    import random

    from ..interp.interpreter import DecisionSequence, InterpreterError, execute

    compared = 0
    for seed in range(replay_seeds):
        rng = random.Random(seed)
        decisions = [rng.randint(0, 7) for _ in range(400)]
        env = {
            name: rng.randint(-4, 4) for name in sorted(result.original.variables())
        }
        try:
            base = execute(
                result.original, dict(env), DecisionSequence(decisions), max_steps=4000
            )
        except InterpreterError:
            continue
        try:
            new = execute(
                result.graph, dict(env), DecisionSequence(decisions), max_steps=4000
            )
        except InterpreterError as error:
            raise VerificationError(
                "semantics", f"transformed program stalled: {error}"
            ) from error
        if base.error is None:
            if new.error is not None:
                raise VerificationError(
                    "semantics", f"introduced run-time error {new.error!r}"
                )
            if new.outputs != base.outputs:
                raise VerificationError(
                    "semantics", f"outputs diverge under seed {seed}"
                )
            if new.total_assignments > base.total_assignments:
                raise VerificationError(
                    "never-slower",
                    f"{base.total_assignments} -> {new.total_assignments} "
                    f"executed assignments under seed {seed}",
                )
        else:
            if new.outputs[: len(base.outputs)] != base.outputs:
                raise VerificationError(
                    "semantics", f"pre-error outputs diverge under seed {seed}"
                )
        compared += 1
    return compared
