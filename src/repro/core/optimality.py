"""The "better" pre-order of Definition 3.6 and optimality checking.

``G'`` is *better* than ``G''`` (both derived from the same program, so
they share their branching structure) iff for every path ``p`` from
``s`` to ``e`` and every assignment pattern ``α``::

    α#(p_{G'}) ≤ α#(p_{G''})

where ``α#`` counts occurrences of ``α`` along the path.  Theorem 5.2
states that the programs produced by ``pde`` / ``pfe`` are optimal in
this sense within the universes ``𝒢_PDE`` / ``𝒢_PFE``.

On finite instances we verify the relation by bounded path enumeration
(see :mod:`repro.interp.paths`).  The per-path counting also yields the
paper's performance guarantee — "each execution of the resulting
program is at least as fast as the similar execution of the original
program" — since the statements that must be executed can only be
reduced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..ir.cfg import FlowGraph
from ..ir.stmts import Assign
from ..interp.paths import enumerate_paths

__all__ = ["Comparison", "compare", "is_better_or_equal", "path_pattern_counts"]


def path_pattern_counts(
    graph: FlowGraph, path: Tuple[str, ...]
) -> Dict[str, int]:
    """Occurrence counts of every assignment pattern along ``path``."""
    counts: Dict[str, int] = {}
    for node in path:
        for stmt in graph.statements(node):
            if isinstance(stmt, Assign):
                pattern = stmt.pattern()
                counts[pattern] = counts.get(pattern, 0) + 1
    return counts


@dataclass
class Comparison:
    """The outcome of comparing two programs path-wise."""

    #: ``first ⊑ second``: first is at least as good on every path.
    first_better_or_equal: bool
    #: ``second ⊑ first``.
    second_better_or_equal: bool
    #: A witness ``(path, pattern, count_first, count_second)`` violating
    #: ``first ⊑ second``, when one exists.
    witness: Optional[Tuple[Tuple[str, ...], str, int, int]] = None

    @property
    def equivalent(self) -> bool:
        return self.first_better_or_equal and self.second_better_or_equal

    @property
    def strictly_better(self) -> bool:
        """First strictly better: better-or-equal and not equivalent."""
        return self.first_better_or_equal and not self.second_better_or_equal


def compare(
    first: FlowGraph, second: FlowGraph, max_edge_repeats: int = 2
) -> Comparison:
    """Compare two programs with identical branching structure."""
    if not first.same_shape(second):
        raise ValueError(
            "programs have different branching structure; the 'better' "
            "relation of Definition 3.6 is only defined within one universe"
        )
    first_le = True
    second_le = True
    witness: Optional[Tuple[Tuple[str, ...], str, int, int]] = None
    for path in enumerate_paths(first, max_edge_repeats):
        counts_first = path_pattern_counts(first, path)
        counts_second = path_pattern_counts(second, path)
        for pattern in set(counts_first) | set(counts_second):
            a = counts_first.get(pattern, 0)
            b = counts_second.get(pattern, 0)
            if a > b:
                first_le = False
                if witness is None:
                    witness = (path, pattern, a, b)
            if b > a:
                second_le = False
        if not first_le and not second_le:
            break
    return Comparison(first_le, second_le, witness)


def is_better_or_equal(
    first: FlowGraph, second: FlowGraph, max_edge_repeats: int = 2
) -> bool:
    """Is ``first`` at least as good as ``second`` (Definition 3.6)?"""
    return compare(first, second, max_edge_repeats).first_better_or_equal


def total_executable_statements(
    graph: FlowGraph, max_edge_repeats: int = 2
) -> List[int]:
    """Assignment count along every enumerated path, in enumeration order.

    A compact fingerprint of the dynamic cost profile used by the
    benchmark harness.
    """
    totals: List[int] = []
    for path in enumerate_paths(graph, max_edge_repeats):
        totals.append(sum(path_pattern_counts(graph, path).values()))
    return totals
