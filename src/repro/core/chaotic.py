"""Chaotic fixed-point iteration (Theorem 3.7, reference [14]).

Section 3 proves the existence of an optimal program via a generalised
fixed-point theorem tailored to *mutually interdependent* program
transformations: given a family ``F`` of dominating, monotone
transformation functions, **any** sequence of applications that contains
every element of ``F`` "sufficiently often" computes the optimum.  For
partial dead code elimination the family is ``F_PDE = {dce, ask}``, for
the faint variant ``F_PFE = {fce, ask}``.

This module makes the theorem executable:

* :func:`chaotic_iterate` runs the family under an arbitrary *fair*
  schedule (round-robin, seeded random, or user-supplied) until a full
  sweep leaves the program invariant;
* :func:`canonicalize` computes the canonical representative the paper
  mentions ("unique up to some reordering in basic blocks") by sorting
  each block's statements into a dependency-respecting normal order —
  so two optimal programs compare equal exactly when they differ only by
  such reorderings.

The property tests drive random fair schedules and assert they all
converge to the same canonical program as the deterministic driver —
the confluence half of Theorem 3.7 on finite instances.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..ir.cfg import FlowGraph
from ..ir.splitting import split_critical_edges
from ..ir.stmts import Statement
from .eliminate import dead_code_elimination, faint_code_elimination
from .sink import assignment_sinking

__all__ = [
    "TRANSFORMATIONS",
    "ChaoticResult",
    "chaotic_iterate",
    "random_fair_schedule",
    "canonicalize",
]

#: The elementary transformations, by name.  Each takes a graph, mutates
#: it, and returns whether anything changed.
TRANSFORMATIONS: Dict[str, Callable[[FlowGraph], bool]] = {
    "dce": lambda graph: dead_code_elimination(graph).changed,
    "fce": lambda graph: faint_code_elimination(graph).changed,
    "ask": lambda graph: _ask(graph),
}


def _ask(graph: FlowGraph) -> bool:
    return assignment_sinking(graph).changed


def random_fair_schedule(
    names: Tuple[str, ...], seed: int
) -> Iterable[str]:
    """An infinite random schedule that is fair by construction: it
    emits a random permutation of ``names`` per round."""
    rng = random.Random(seed)

    def rounds():
        while True:
            order = list(names)
            rng.shuffle(order)
            yield from order

    return rounds()


@dataclass
class ChaoticResult:
    """Outcome of a chaotic iteration run."""

    original: FlowGraph
    graph: FlowGraph
    #: Transformation names in application order (only applied ones).
    trace: List[str] = field(default_factory=list)
    #: Applications that changed the program.
    effective: int = 0


def chaotic_iterate(
    graph: FlowGraph,
    family: Tuple[str, ...] = ("dce", "ask"),
    schedule: Optional[Iterable[str]] = None,
    max_applications: int = 10_000,
) -> ChaoticResult:
    """Run ``family`` under ``schedule`` until a full quiet sweep.

    ``schedule`` defaults to round-robin over ``family``.  Termination:
    the run stops once every member of the family has been applied at
    least once since the last change (a quiet sweep) — the "sufficiently
    often" condition of Theorem 3.7 is then witnessed.
    """
    for name in family:
        if name not in TRANSFORMATIONS:
            raise ValueError(f"unknown transformation {name!r}")
    split = split_critical_edges(graph)
    work = split.copy()
    result = ChaoticResult(original=split, graph=work)

    if schedule is None:
        def round_robin():
            while True:
                yield from family

        schedule = round_robin()

    quiet: set = set()
    for name in schedule:
        if name not in family:
            raise ValueError(f"schedule emitted {name!r}, not in the family")
        if len(result.trace) >= max_applications:
            raise RuntimeError("chaotic iteration exceeded the application cap")
        result.trace.append(name)
        changed = TRANSFORMATIONS[name](work)
        if changed:
            result.effective += 1
            quiet = set()
        else:
            quiet.add(name)
            if quiet >= set(family):
                break
    return result


# ----------------------------------------------------------------------
# Canonical representatives
# ----------------------------------------------------------------------


def _depends(first: Statement, second: Statement) -> bool:
    """Must ``first`` stay before ``second``?

    Order is fixed when the pair is not independent: write-read,
    read-write or write-write on some variable, or both statements are
    relevant (the output sequence is observable).
    """
    if first.is_relevant() and second.is_relevant():
        return True
    first_writes = first.modified()
    second_writes = second.modified()
    if first_writes is not None and first_writes in second.used():
        return True
    if second_writes is not None and second_writes in first.used():
        return True
    if first_writes is not None and first_writes == second_writes:
        return True
    return False


def _canonical_block(statements: Tuple[Statement, ...]) -> List[Statement]:
    """Topologically sort ``statements`` under :func:`_depends`, breaking
    ties by statement text then original position — a deterministic
    normal form reachable from any dependency-respecting reordering."""
    remaining = list(enumerate(statements))
    ordered: List[Statement] = []
    while remaining:
        # Ready = statements with no pending predecessor (in original
        # order) that must stay before them.
        ready = [
            (index, stmt)
            for index, stmt in remaining
            if not any(
                _depends(other, stmt)
                for other_index, other in remaining
                if other_index < index
            )
        ]
        chosen = min(ready, key=lambda pair: (str(pair[1]), pair[0]))
        ordered.append(chosen[1])
        remaining = [pair for pair in remaining if pair[0] != chosen[0]]
    return ordered


def canonicalize(graph: FlowGraph) -> FlowGraph:
    """The canonical representative of ``graph`` modulo in-block
    reordering of independent statements."""
    result = graph.copy()
    for node in result.nodes():
        statements = result.statements(node)
        if len(statements) > 1:
            result.set_statements(node, _canonical_block(statements))
    return result
