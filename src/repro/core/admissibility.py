"""Executable admissibility (Definitions 3.1 / 3.2).

An assignment sinking for a pattern ``α ≡ x := t`` is *admissible* iff

1. **removed occurrences are substituted**: on every path from a removal
   point to ``e``, an instance of ``α`` is inserted at some later point
   with no ``α``-blocking instruction in between — unless ``α`` is
   blocked by nothing all the way to ``e`` (then the value is provably
   unused on that path and dropping it is the correct substitution);
2. **inserted instances are justified**: on every path from ``s`` to an
   insertion point, an occurrence of ``α`` was removed at some earlier
   point with no ``α``-blocking instruction in between.

This module checks both conditions for a concrete
:class:`~repro.core.sink.SinkingReport` against the before/after program
pair.  Both conditions are all-paths properties with cycles resolving
coinductively (a cycle carrying neither blockers nor insertions proves
the value unused around it), so each is computed as a **greatest
fixpoint** over block boundary points — linear in the program, no path
enumeration.  The property tests certify every ``ask`` pass the driver
performs against this independent implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..ir.cfg import FlowGraph
from ..ir.stmts import Assign
from ..dataflow.patterns import PatternInfo, blocks_sinking
from .sink import SinkingReport

__all__ = ["AdmissibilityViolation", "check_sinking_admissible"]


class AdmissibilityViolation(AssertionError):
    """A sinking pass violated Definition 3.2."""


@dataclass
class _PatternPlan:
    """Removals and insertions of one pattern in one ask pass."""

    info: PatternInfo
    #: Blocks where an occurrence was removed, with the index it had in
    #: the *before* program.
    removals: List[Tuple[str, int]] = field(default_factory=list)
    #: ``(block, "entry" | "exit")`` insertion points.
    insertions: List[Tuple[str, str]] = field(default_factory=list)


def _plans(before: FlowGraph, report: SinkingReport) -> Dict[str, _PatternPlan]:
    plans: Dict[str, _PatternPlan] = {}

    def plan_for(pattern: str) -> _PatternPlan:
        if pattern not in plans:
            occurrence = next(
                stmt
                for _n, _i, stmt in before.assignments()
                if stmt.pattern() == pattern
            )
            plans[pattern] = _PatternPlan(PatternInfo.of(occurrence))
        return plans[pattern]

    for block, index, pattern in report.removed:
        plan_for(pattern).removals.append((block, index))
    for block, where, pattern in report.inserted:
        plan_for(pattern).insertions.append((block, where))
    return plans


def _first_blocker(before: FlowGraph, plan: _PatternPlan, block: str) -> int:
    """Index of the first α-blocking statement of ``block`` (or len)."""
    statements = before.statements(block)
    for index, stmt in enumerate(statements):
        if blocks_sinking(stmt, plan.info):
            return index
    return len(statements)


def _substituted_at_entry(
    before: FlowGraph, plan: _PatternPlan, virtual_uses: frozenset[str]
) -> Dict[str, bool]:
    """Greatest fixpoint of ``OK(b)``: starting at the *entry* of ``b``,
    every path to ``e`` meets an insertion of α before any α-blocker, or
    runs to ``e`` completely unblocked (value unused).

    Transfer through a block: an entry insertion satisfies immediately;
    otherwise any blocker inside the block fails; otherwise an exit
    insertion satisfies; otherwise the requirement passes to all
    successors (``e``: satisfied unless the pattern assigns a virtually
    used global).
    """
    inserted_entry = {b for (b, w) in plan.insertions if w == "entry"}
    inserted_exit = {b for (b, w) in plan.insertions if w == "exit"}
    ok: Dict[str, bool] = {node: True for node in before.nodes()}

    changed = True
    while changed:
        changed = False
        for node in before.nodes():
            if node in inserted_entry:
                value = True
            elif _first_blocker(before, plan, node) < len(before.statements(node)):
                value = False
            elif node in inserted_exit:
                value = True
            elif node == before.end:
                value = plan.info.lhs not in virtual_uses
            else:
                value = all(ok[s] for s in before.successors(node))
            if value != ok[node]:
                ok[node] = value
                changed = True
    return ok


def _justified_at_exit(before: FlowGraph, plan: _PatternPlan) -> Dict[str, bool]:
    """Greatest fixpoint of ``JUST(b)``: every path from ``s`` to the
    *exit* of ``b`` carries a removal of α after its last α-blocker.

    Transfer: scanning ``b`` backwards, a removal before any blocker
    satisfies; a blocker first fails; a clean block passes the question
    to all predecessors (``s``: fails — nothing was removed above it).
    """
    removal_positions: Dict[str, set] = {}
    for block, index in plan.removals:
        removal_positions.setdefault(block, set()).add(index)

    def local_verdict(node: str):
        """True/False decided inside the block, None = transparent."""
        statements = before.statements(node)
        removals = removal_positions.get(node, set())
        for index in range(len(statements) - 1, -1, -1):
            if index in removals:
                return True
            if blocks_sinking(statements[index], plan.info):
                return False
        return None

    locals_: Dict[str, object] = {node: local_verdict(node) for node in before.nodes()}
    just: Dict[str, bool] = {node: True for node in before.nodes()}

    changed = True
    while changed:
        changed = False
        for node in before.nodes():
            local = locals_[node]
            if local is not None:
                value = bool(local)
            elif node == before.start:
                value = False
            else:
                preds = before.predecessors(node)
                value = bool(preds) and all(just[p] for p in preds)
            if value != just[node]:
                just[node] = value
                changed = True
    return just


def check_sinking_admissible(before: FlowGraph, report: SinkingReport) -> None:
    """Raise :class:`AdmissibilityViolation` if the pass violated
    Definition 3.2.  ``before`` is the program the pass ran on."""
    virtual_uses = before.globals
    for pattern, plan in _plans(before, report).items():
        substituted = _substituted_at_entry(before, plan, virtual_uses)
        justified = _justified_at_exit(before, plan)

        for block, index in plan.removals:
            statements = before.statements(block)
            stmt = statements[index] if 0 <= index < len(statements) else None
            if not (isinstance(stmt, Assign) and stmt.pattern() == pattern):
                raise AdmissibilityViolation(
                    f"removal record ({block}, {index}) does not point at "
                    f"an occurrence of {pattern!r}"
                )
            # From just after the removed occurrence: no blocker may
            # follow inside the block (then substitution happens at the
            # exit insertion or downstream).
            tail_blocked = any(
                blocks_sinking(s, plan.info) for s in statements[index + 1 :]
            )
            inserted_exit = (block, "exit") in plan.insertions
            if tail_blocked:
                ok = False
            elif inserted_exit:
                ok = True
            elif block == before.end:
                ok = plan.info.lhs not in virtual_uses
            else:
                ok = all(substituted[s] for s in before.successors(block))
            if not ok:
                raise AdmissibilityViolation(
                    f"occurrence of {pattern!r} removed at ({block}, {index}) "
                    "is not substituted on every path (Definition 3.2.1)"
                )

        for block, where in plan.insertions:
            if where == "entry":
                preds = before.predecessors(block)
                is_justified = bool(preds) and all(justified[p] for p in preds)
            else:
                # Exit insertion: justification along paths to the exit,
                # including removals inside the block itself.
                local = None
                statements = before.statements(block)
                removals = {
                    i for (b, i) in plan.removals if b == block
                }
                for index in range(len(statements) - 1, -1, -1):
                    if index in removals:
                        local = True
                        break
                    if blocks_sinking(statements[index], plan.info):
                        local = False
                        break
                if local is not None:
                    is_justified = local
                elif block == before.start:
                    is_justified = False
                else:
                    preds = before.predecessors(block)
                    is_justified = bool(preds) and all(justified[p] for p in preds)
            if not is_justified:
                raise AdmissibilityViolation(
                    f"instance of {pattern!r} inserted at ({block}, {where}) "
                    "is not justified on every path (Definition 3.2.2)"
                )
