"""The paper's primary contribution: optimal partial dead (faint) code
elimination by exhaustive assignment sinking + elimination."""

from .driver import (
    NonTermination,
    OptimizationResult,
    OptimizationStats,
    optimize,
    pde,
    pfe,
)
from .eliminate import (
    EliminationReport,
    dead_code_elimination,
    faint_code_elimination,
)
from .optimality import Comparison, compare, is_better_or_equal, path_pattern_counts
from .sink import SinkingError, SinkingReport, assignment_sinking
from .verify import (
    VerificationError,
    VerificationReport,
    verified_pde,
    verified_pfe,
)

__all__ = [
    "NonTermination",
    "OptimizationResult",
    "OptimizationStats",
    "optimize",
    "pde",
    "pfe",
    "EliminationReport",
    "dead_code_elimination",
    "faint_code_elimination",
    "Comparison",
    "compare",
    "is_better_or_equal",
    "path_pattern_counts",
    "SinkingError",
    "SinkingReport",
    "assignment_sinking",
    "VerificationError",
    "VerificationReport",
    "verified_pde",
    "verified_pfe",
]
