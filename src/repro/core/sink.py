"""The assignment sinking step ``ask`` (paper Section 5.3).

Driven by the delayability analysis of Table 2, one ``ask`` pass

1. **removes every sinking candidate** (the occurrences contributing
   ``LOCDELAYED``), and
2. **inserts instances** of every pattern ``α`` at the entry of ``n``
   where ``N-INSERT_n(α)`` holds and at the exit of ``n`` where
   ``X-INSERT_n(α)`` holds.

Patterns delayable through the end node are dropped: the equations
produce no insertion there, and an unblocked path to ``e`` proves the
value is unused on it (globals are protected by their virtual use at
``e``, which blocks delaying past the end).

The paper observes that all patterns inserted at one program point are
*independent* and may be placed in arbitrary order; we insert them in
sorted pattern order (deterministic) and verify the independence claim,
raising :class:`SinkingError` if it ever failed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..ir.cfg import FlowGraph
from ..ir.stmts import Statement
from ..dataflow.delay import DelayabilityResult, analyze_delayability
from ..dataflow.patterns import PatternInfo, sinking_candidate_index

__all__ = ["SinkingError", "SinkingReport", "assignment_sinking"]


class SinkingError(AssertionError):
    """An internal invariant of the sinking step failed."""


@dataclass
class SinkingReport:
    """What one ``ask`` pass did."""

    #: ``(block, index, pattern)`` of removed sinking candidates.
    removed: List[Tuple[str, int, str]] = field(default_factory=list)
    #: ``(block, "entry"|"exit", pattern)`` of inserted instances.
    inserted: List[Tuple[str, str, str]] = field(default_factory=list)
    #: Whether the pass changed the program text (candidate removal and
    #: reinsertion at the same position cancels out).
    changed: bool = False
    #: Work done by the delayability analysis (transfer evaluations).
    analysis_work: int = 0


def _check_independence(infos: Sequence[PatternInfo], where: str) -> None:
    """Verify the Section 5.3 claim for simultaneously inserted patterns."""
    for i, first in enumerate(infos):
        for second in infos[i + 1 :]:
            conflict = (
                first.lhs == second.lhs
                or first.lhs in second.rhs_variables
                or second.lhs in first.rhs_variables
            )
            if conflict:
                raise SinkingError(
                    f"dependent patterns {first.pattern!r} and "
                    f"{second.pattern!r} inserted together at {where}"
                )


def assignment_sinking(
    graph: FlowGraph, delayability: DelayabilityResult | None = None
) -> SinkingReport:
    """One ``ask`` pass over ``graph`` (mutating it in place).

    ``graph`` must be critical-edge-free.  A precomputed
    ``delayability`` result may be supplied (the driver reuses it for
    its termination check); otherwise it is computed here.
    """
    if delayability is None:
        delayability = analyze_delayability(graph)
    delayability.check_invariants()
    patterns = delayability.patterns
    report = SinkingReport(analysis_work=delayability.transfer_evaluations)

    new_statements: Dict[str, List[Statement]] = {}
    for node in graph.nodes():
        statements = list(graph.statements(node))
        virtually_used = graph.globals if node == graph.end else frozenset()

        # 1. Remove sinking candidates (at most one per pattern per block).
        removals: List[Tuple[int, str]] = []
        for info in patterns:
            index = sinking_candidate_index(tuple(statements), info, virtually_used)
            if index is not None:
                removals.append((index, info.pattern))
        for index, pattern in sorted(removals, reverse=True):
            del statements[index]
            report.removed.append((node, index, pattern))

        # 2. Insert at the entry / exit as dictated by the predicates.
        entry_infos = patterns.members(delayability.n_insert(node))
        exit_infos = patterns.members(delayability.x_insert(node))
        _check_independence(entry_infos, f"entry of {node!r}")
        _check_independence(exit_infos, f"exit of {node!r}")
        for info in entry_infos:
            report.inserted.append((node, "entry", info.pattern))
        for info in exit_infos:
            report.inserted.append((node, "exit", info.pattern))

        statements = (
            [info.instance() for info in entry_infos]
            + statements
            + [info.instance() for info in exit_infos]
        )
        new_statements[node] = statements

    for node, statements in new_statements.items():
        if list(graph.statements(node)) != statements:
            graph.set_statements(node, statements)
            report.changed = True
    return report
