"""Dead variable analysis (paper Table 1, left system).

A variable ``x`` is **dead** at a program point if on every path from
that point to ``e`` every right-hand side occurrence of ``x`` is
preceded by a modification of ``x`` — its current value can never reach
a use.  The equation system (per instruction ``ι``)::

    N-DEAD_ι = ¬USED_ι · (X-DEAD_ι + MOD_ι)
    X-DEAD_ι = Π_{ι' ∈ succ(ι)} N-DEAD_ι'

is a backwards-directed bit-vector problem; as the paper notes it "can
straightforwardly be modified to work on basic blocks", which is what
:class:`DeadVariableAnalysis` does — the block transfer folds the
instruction transfer over the block in reverse.

Boundary: at the exit of ``e`` every variable is dead **except declared
globals** (footnote 2: assignments to variables declared outside the
flow graph are relevant; we model this as a virtual use at ``e``).
"""

from __future__ import annotations

from typing import List, Sequence

from ..ir.cfg import FlowGraph
from ..ir.stmts import Statement
from .bitvec import Universe
from .framework import BACKWARD, Analysis, Result, solve

__all__ = ["DeadVariableAnalysis", "DeadVariables", "analyze_dead"]


def _instruction_transfer(universe: Universe, stmt: Statement, x_dead: int) -> int:
    """``N-DEAD_ι`` from ``X-DEAD_ι`` for one instruction."""
    used = universe.mask(stmt.used())
    modified = stmt.modified()
    mod = universe.bit(modified) if modified is not None and modified in universe else 0
    return (x_dead | mod) & ~used


class DeadVariableAnalysis(Analysis):
    """The Table 1 dead variable system as a block-level backward problem."""

    direction = BACKWARD

    def boundary(self) -> int:
        # All variables dead at the exit of ``e`` except globals.
        return self.universe.full & ~self.universe.mask(self.graph.globals)

    def transfer(self, node: str, value: int) -> int:
        for stmt in reversed(self.graph.statements(node)):
            value = _instruction_transfer(self.universe, stmt, value)
        return value


class DeadVariables:
    """Solved dead variable information with per-instruction access."""

    def __init__(self, graph: FlowGraph, result: Result) -> None:
        self._graph = graph
        self._result = result
        self.universe = result.universe

    @property
    def result(self) -> Result:
        return self._result

    def entry(self, node: str) -> int:
        """Bit-vector of variables dead at the entry of block ``node``."""
        return self._result.entry[node]

    def exit(self, node: str) -> int:
        """Bit-vector of variables dead at the exit of block ``node``."""
        return self._result.exit[node]

    def after_each(self, node: str) -> List[int]:
        """``X-DEAD`` after each instruction of ``node``.

        Element ``k`` is the dead set immediately *after* statement ``k``
        — exactly what the elimination step of Section 5.2 consults
        ("eliminate all assignments whose left-hand side variables are
        dead immediately after them").
        """
        statements: Sequence[Statement] = self._graph.statements(node)
        after = [0] * len(statements)
        value = self._result.exit[node]
        for index in range(len(statements) - 1, -1, -1):
            after[index] = value
            value = _instruction_transfer(self.universe, statements[index], value)
        return after

    def is_dead_after(self, node: str, index: int, variable: str) -> bool:
        """Is ``variable`` dead immediately after statement ``index``?"""
        if variable not in self.universe:
            return False
        return self.universe.test(self.after_each(node)[index], variable)

    def dead_at_entry(self, node: str) -> tuple[str, ...]:
        return self.universe.members(self.entry(node))

    def dead_at_exit(self, node: str) -> tuple[str, ...]:
        return self.universe.members(self.exit(node))


def analyze_dead(graph: FlowGraph) -> DeadVariables:
    """Run the dead variable analysis of Table 1 on ``graph``."""
    universe = Universe(sorted(graph.variables()))
    analysis = DeadVariableAnalysis(graph, universe)
    return DeadVariables(graph, solve(analysis))
