"""Dense bit-vectors over a named universe.

The paper's analyses are *bit-vector data flow analyses*: the dead
variable analysis and the delayability analysis operate on boolean
vectors indexed by program variables and assignment patterns
respectively (Tables 1 and 2).  We represent such vectors as plain
Python integers (arbitrary-precision bitmasks) — the closest Python
equivalent of machine-word bit-vector operations — and use
:class:`Universe` to map names to bit positions.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Tuple

__all__ = ["Universe"]


class Universe:
    """An ordered universe of names, each owning one bit position."""

    def __init__(self, names: Iterable[str]) -> None:
        self._names: Tuple[str, ...] = tuple(names)
        self._index: Dict[str, int] = {}
        for position, name in enumerate(self._names):
            if name in self._index:
                raise ValueError(f"duplicate universe element {name!r}")
            self._index[name] = position

    # -- basic facts ----------------------------------------------------
    @property
    def names(self) -> Tuple[str, ...]:
        return self._names

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    # -- bits -----------------------------------------------------------
    def index(self, name: str) -> int:
        return self._index[name]

    def bit(self, name: str) -> int:
        """The mask with only ``name``'s bit set."""
        return 1 << self._index[name]

    def mask(self, names: Iterable[str]) -> int:
        """The mask with the bits of all ``names`` set.

        Names outside the universe are ignored — convenient for local
        predicates mentioning variables a particular analysis does not
        track (e.g. globals-only expressions).
        """
        value = 0
        for name in names:
            position = self._index.get(name)
            if position is not None:
                value |= 1 << position
        return value

    @property
    def full(self) -> int:
        """The mask with every bit set (the lattice top for meets)."""
        return (1 << len(self._names)) - 1

    # -- inspection -------------------------------------------------------
    def test(self, vector: int, name: str) -> bool:
        """Is ``name``'s bit set in ``vector``?"""
        return bool(vector >> self._index[name] & 1)

    def members(self, vector: int) -> Tuple[str, ...]:
        """The names whose bits are set in ``vector``, in universe order."""
        return tuple(
            name for position, name in enumerate(self._names) if vector >> position & 1
        )

    def format(self, vector: int) -> str:
        """Human-readable rendering, e.g. ``{x, y}``."""
        return "{" + ", ".join(self.members(vector)) + "}"
