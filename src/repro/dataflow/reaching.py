"""Reaching definitions — substrate for the def-use-graph baseline.

Not part of the paper's algorithm: the paper's Section 5.2 contrasts its
iterative elimination with "standard methods … based on definition-use
graphs [2, 21]" whose graphs are of worst-case size ``O(i² · v)``.  To
make that comparison measurable we build the def-use graph the standard
way, via a classical *may* (union-confluence) reaching definitions
analysis over definition sites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..ir.cfg import FlowGraph
from ..ir.stmts import Assign
from .bitvec import Universe
from .framework import FORWARD, Analysis, Result, solve

__all__ = ["Definition", "ReachingDefinitions", "analyze_reaching"]


@dataclass(frozen=True)
class Definition:
    """One definition site: assignment ``index`` in ``block`` defines ``var``."""

    block: str
    index: int
    var: str

    def label(self) -> str:
        return f"{self.block}:{self.index}:{self.var}"


class _ReachingAnalysis(Analysis):
    direction = FORWARD
    confluence = "any"

    def __init__(
        self,
        graph: FlowGraph,
        universe: Universe,
        gen: Dict[str, int],
        kill: Dict[str, int],
    ) -> None:
        super().__init__(graph, universe)
        self._gen = gen
        self._kill = kill

    def boundary(self) -> int:
        return 0

    def transfer(self, node: str, value: int) -> int:
        return self._gen[node] | (value & ~self._kill[node])


class ReachingDefinitions:
    """Solved reaching definitions with per-instruction access."""

    def __init__(
        self,
        graph: FlowGraph,
        definitions: List[Definition],
        universe: Universe,
        result: Result,
        defs_of_var: Dict[str, int],
    ) -> None:
        self._graph = graph
        self.definitions = definitions
        self.universe = universe
        self._result = result
        self._defs_of_var = defs_of_var
        self._by_label = {d.label(): d for d in definitions}

    def entry(self, node: str) -> int:
        return self._result.entry[node]

    def exit(self, node: str) -> int:
        return self._result.exit[node]

    def definitions_in(self, vector: int) -> Tuple[Definition, ...]:
        """Decode a reaching-definitions bit-vector."""
        return tuple(self._by_label[label] for label in self.universe.members(vector))

    def reaching_before(self, node: str) -> List[int]:
        """Reaching-definition vector before each statement of ``node``."""
        statements = self._graph.statements(node)
        value = self._result.entry[node]
        before: List[int] = []
        for index, stmt in enumerate(statements):
            before.append(value)
            if isinstance(stmt, Assign):
                definition = Definition(node, index, stmt.lhs)
                value = (value & ~self._defs_of_var.get(stmt.lhs, 0)) | self.universe.bit(
                    definition.label()
                )
        return before

    def definitions_reaching(self, node: str, index: int, var: str) -> Tuple[Definition, ...]:
        """The definitions of ``var`` that may reach statement ``index``."""
        vector = self.reaching_before(node)[index] & self._defs_of_var.get(var, 0)
        return tuple(self._by_label[label] for label in self.universe.members(vector))


def analyze_reaching(graph: FlowGraph) -> ReachingDefinitions:
    """Run classical reaching definitions over all assignment sites."""
    definitions: List[Definition] = [
        Definition(node, index, stmt.lhs) for node, index, stmt in graph.assignments()
    ]
    universe = Universe(d.label() for d in definitions)

    defs_of_var: Dict[str, int] = {}
    for definition in definitions:
        defs_of_var[definition.var] = defs_of_var.get(definition.var, 0) | universe.bit(
            definition.label()
        )

    gen: Dict[str, int] = {}
    kill: Dict[str, int] = {}
    for node in graph.nodes():
        g = 0
        k = 0
        for index, stmt in enumerate(graph.statements(node)):
            if isinstance(stmt, Assign):
                definition = Definition(node, index, stmt.lhs)
                g = (g & ~defs_of_var[stmt.lhs]) | universe.bit(definition.label())
                k |= defs_of_var[stmt.lhs]
        gen[node] = g
        kill[node] = k

    result = solve(_ReachingAnalysis(graph, universe, gen, kill))
    return ReachingDefinitions(graph, definitions, universe, result, defs_of_var)
