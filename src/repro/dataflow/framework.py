"""Generic iterative bit-vector dataflow solver.

Both bit-vector analyses of the paper — the backward *dead variable*
analysis (Table 1) and the forward *delayability* analysis (Table 2) —
are instances of one scheme: a block-level transfer function combined
with an all-paths meet (the product ``Π`` in the equation systems, i.e.
bitwise AND), solved for the **greatest** solution by optimistic
initialisation and a worklist iteration.

:class:`Analysis` captures the scheme; :func:`solve` runs the worklist.
The solver also reports basic statistics (worklist pops, i.e. block
transfer evaluations), which the Section 6 complexity benchmarks use.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Tuple

from ..ir.cfg import FlowGraph
from .bitvec import Universe

__all__ = ["Analysis", "Result", "solve"]

FORWARD = "forward"
BACKWARD = "backward"


class Analysis(abc.ABC):
    """A block-level bit-vector dataflow problem.

    The paper's analyses all use the all-paths product ``Π`` (bitwise
    AND) as their confluence operator; ``confluence = "any"`` (bitwise
    OR) is provided for the auxiliary *may* analyses the baselines need
    (e.g. reaching definitions for the def-use graph).
    """

    #: ``"forward"`` or ``"backward"``.
    direction: str = FORWARD
    #: ``"all"`` (bitwise AND, greatest solution) or ``"any"`` (bitwise
    #: OR, least solution).
    confluence: str = "all"

    def __init__(self, graph: FlowGraph, universe: Universe) -> None:
        self.graph = graph
        self.universe = universe

    @abc.abstractmethod
    def boundary(self) -> int:
        """The fixed value at the graph boundary.

        For a forward analysis this is the value at the *entry of s*;
        for a backward analysis, at the *exit of e*.
        """

    @abc.abstractmethod
    def transfer(self, node: str, value: int) -> int:
        """The block transfer function.

        Forward: entry value → exit value.  Backward: exit value → entry
        value.
        """


@dataclass
class Result:
    """Solved entry/exit values for every block, plus solver statistics."""

    universe: Universe
    #: Value at the entry of each block (``N-...`` in the paper's tables).
    entry: Dict[str, int]
    #: Value at the exit of each block (``X-...``).
    exit: Dict[str, int]
    #: Number of block transfer evaluations performed by the worklist.
    transfer_evaluations: int

    def entry_members(self, node: str) -> Tuple[str, ...]:
        return self.universe.members(self.entry[node])

    def exit_members(self, node: str) -> Tuple[str, ...]:
        return self.universe.members(self.exit[node])


def solve(analysis: Analysis) -> Result:
    """Solve ``analysis`` by worklist iteration.

    For ``confluence="all"`` non-boundary meet inputs start at the
    optimistic top (all bits set) and only ever shrink — the greatest
    solution; for ``"any"`` they start empty and only ever grow — the
    least solution.  Either way termination is bounded by
    ``|universe| · |N|`` bit flips.
    """
    graph = analysis.graph
    universe = analysis.universe
    forward = analysis.direction == FORWARD

    if forward:
        sources = graph.predecessors
        boundary_node = graph.start
    else:
        sources = graph.successors
        boundary_node = graph.end

    all_paths = analysis.confluence == "all"
    top = universe.full if all_paths else 0
    meet_in: Dict[str, int] = {node: top for node in graph.nodes()}
    meet_in[boundary_node] = analysis.boundary()
    out: Dict[str, int] = {}

    # Deterministic worklist: a FIFO over block names, deduplicated.
    pending = list(graph.nodes())
    queued = set(pending)
    evaluations = 0
    while pending:
        node = pending.pop(0)
        queued.discard(node)

        if node != boundary_node:
            value = top
            if all_paths:
                for source in sources(node):
                    value &= out.get(source, top)
            else:
                for source in sources(node):
                    value |= out.get(source, top)
            meet_in[node] = value

        evaluations += 1
        new_out = analysis.transfer(node, meet_in[node])
        if out.get(node) != new_out:
            out[node] = new_out
            targets = graph.successors(node) if forward else graph.predecessors(node)
            for target in targets:
                if target not in queued:
                    queued.add(target)
                    pending.append(target)

    if forward:
        entry, exit_ = meet_in, out
    else:
        entry, exit_ = out, meet_in
    return Result(universe=universe, entry=entry, exit=exit_, transfer_evaluations=evaluations)
