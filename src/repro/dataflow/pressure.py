"""Register pressure — live-range width before and after optimisation.

The delayability analysis the sinking step adapts was invented (in lazy
code motion, paper reference [22]) to *minimise the lifetimes of
temporaries*.  Assignment sinking has the same flavour at the variable
level: moving a definition toward its uses shortens the value's live
range.  This module measures that effect: the number of simultaneously
live variables at every program point, its maximum (the register
pressure a backend would face) and its program-length average.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..ir.cfg import FlowGraph
from .live import analyze_live

__all__ = ["PressureProfile", "measure_pressure"]


@dataclass
class PressureProfile:
    """Live-variable counts over all program points of a program."""

    #: live-set size at each point (block entries + after each statement).
    point_counts: List[int]
    #: ``(block, index)`` of a point realising the maximum (index -1 =
    #: block entry).
    peak_at: Tuple[str, int]

    @property
    def peak(self) -> int:
        return max(self.point_counts) if self.point_counts else 0

    @property
    def average(self) -> float:
        if not self.point_counts:
            return 0.0
        return sum(self.point_counts) / len(self.point_counts)


def measure_pressure(graph: FlowGraph) -> PressureProfile:
    """Live-set sizes at every program point of ``graph``."""
    live = analyze_live(graph)
    counts: List[int] = []
    peak = -1
    peak_at: Tuple[str, int] = (graph.start, -1)

    def record(count: int, where: Tuple[str, int]) -> None:
        nonlocal peak, peak_at
        counts.append(count)
        if count > peak:
            peak = count
            peak_at = where

    for node in graph.nodes():
        entry = live.entry(node)
        record(bin(entry).count("1"), (node, -1))
        for index, value in enumerate(live.after_each(node)):
            record(bin(value).count("1"), (node, index))
    return PressureProfile(point_counts=counts, peak_at=peak_at)
