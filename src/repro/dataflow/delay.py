"""Delayability analysis and insertion points (paper Table 2).

The sinking step is controlled by a forward bit-vector analysis over
assignment patterns, adapted from the delayability analysis of lazy code
motion ([22, 23]).  ``N-DELAYED_n(α)`` / ``X-DELAYED_n(α)`` mean that
sinking candidates of ``α`` can be moved to the entry / exit of block
``n``::

    N-DELAYED_n = false                                  if n = s
                  Π_{m ∈ pred(n)} X-DELAYED_m            otherwise
    X-DELAYED_n = LOCDELAYED_n + N-DELAYED_n · ¬LOCBLOCKED_n

The greatest solution yields the insertion predicates::

    N-INSERT_n = N-DELAYED_n · LOCBLOCKED_n
    X-INSERT_n = X-DELAYED_n · Σ_{m ∈ succ(n)} ¬N-DELAYED_m

Due to up-front critical edge splitting there are never insertions at
the exit of branching nodes (paper footnote 6) — an invariant
:func:`DelayabilityResult.check_invariants` verifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..ir.cfg import FlowGraph
from .framework import FORWARD, Analysis, Result, solve
from .patterns import PatternUniverse, local_predicate_table

__all__ = ["DelayabilityResult", "analyze_delayability"]


class _DelayabilityAnalysis(Analysis):
    direction = FORWARD

    def __init__(
        self,
        graph: FlowGraph,
        patterns: PatternUniverse,
        locals_: Dict[str, Tuple[int, int]],
    ) -> None:
        super().__init__(graph, patterns.universe)
        self._locals = locals_

    def boundary(self) -> int:
        return 0  # N-DELAYED_s = false

    def transfer(self, node: str, n_delayed: int) -> int:
        loc_delayed, loc_blocked = self._locals[node]
        return loc_delayed | (n_delayed & ~loc_blocked)


@dataclass
class DelayabilityResult:
    """Solved delayability with the derived insertion predicates."""

    graph: FlowGraph
    patterns: PatternUniverse
    #: ``(LOCDELAYED_n, LOCBLOCKED_n)`` per block.
    locals: Dict[str, Tuple[int, int]]
    #: ``N-DELAYED_n`` / ``X-DELAYED_n`` per block.
    n_delayed: Dict[str, int]
    x_delayed: Dict[str, int]
    transfer_evaluations: int

    def n_insert(self, node: str) -> int:
        """Patterns to insert at the entry of ``node``."""
        _loc_delayed, loc_blocked = self.locals[node]
        return self.n_delayed[node] & loc_blocked

    def x_insert(self, node: str) -> int:
        """Patterns to insert at the exit of ``node``."""
        some_successor_not_delayed = 0
        for successor in self.graph.successors(node):
            some_successor_not_delayed |= ~self.n_delayed[successor]
        return self.x_delayed[node] & some_successor_not_delayed & self.patterns.universe.full

    def check_invariants(self) -> None:
        """Assert paper footnote 6 on an edge-split graph: no insertions
        at the exit of branching nodes."""
        for node in self.graph.nodes():
            if len(self.graph.successors(node)) > 1 and self.x_insert(node):
                members = self.patterns.universe.members(self.x_insert(node))
                raise AssertionError(
                    f"X-INSERT at branching node {node!r} for {members} — "
                    "was the graph edge-split?"
                )


def analyze_delayability(graph: FlowGraph) -> DelayabilityResult:
    """Run the Table 2 delayability analysis on ``graph``.

    ``graph`` should be critical-edge-free (see
    :func:`repro.ir.splitting.split_critical_edges`); the result's
    :meth:`~DelayabilityResult.check_invariants` detects violations.
    """
    patterns = PatternUniverse(graph)
    locals_ = local_predicate_table(graph, patterns)
    analysis = _DelayabilityAnalysis(graph, patterns, locals_)
    result: Result = solve(analysis)
    return DelayabilityResult(
        graph=graph,
        patterns=patterns,
        locals=locals_,
        n_delayed=result.entry,
        x_delayed=result.exit,
        transfer_evaluations=result.transfer_evaluations,
    )
