"""Assignment patterns (paper Section 2) and their local sinking predicates.

An **assignment pattern** ``α ≡ x := t`` is a string-level equivalence
class of assignment statements; the delayability analysis of Table 2
works on bit-vectors indexed by the patterns occurring in the program.

This module computes, per basic block ``n`` and pattern ``α``, the local
predicates of Table 2:

* ``LOCDELAYED_n(α)`` — ``n`` contains a **sinking candidate** of ``α``:
  an occurrence that is not *blocked*, i.e. neither followed by a
  modification of an operand of ``t`` nor by a modification or a usage
  of ``x`` (Figure 13; among several occurrences at most the last one
  is a candidate, since every occurrence blocks its predecessors by
  modifying ``x``);
* ``LOCBLOCKED_n(α)`` — some instruction of ``n`` blocks the sinking of
  ``α``.  An occurrence of ``α`` itself blocks ``α`` (it modifies
  ``x``); this is what makes incoming delayed instances materialise
  before a local redefinition, which the *m*-to-*n* sinkings of
  Figure 7 rely on.

Declared globals are modelled as virtually used at the exit of ``e``
(paper footnote 2), so ``LOCBLOCKED_e(α)`` holds for every pattern
assigning a global.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..ir.cfg import FlowGraph
from ..ir.exprs import Expr
from ..ir.stmts import Assign, Statement
from .bitvec import Universe

__all__ = [
    "PatternInfo",
    "PatternUniverse",
    "blocks_sinking",
    "sinking_candidate_index",
    "local_predicates",
]


@dataclass(frozen=True)
class PatternInfo:
    """Static facts about one assignment pattern ``lhs := rhs``."""

    pattern: str
    lhs: str
    rhs: Expr
    rhs_variables: frozenset[str]

    @staticmethod
    def of(stmt: Assign) -> "PatternInfo":
        return PatternInfo(stmt.pattern(), stmt.lhs, stmt.rhs, stmt.rhs.variables())

    def instance(self) -> Assign:
        """A fresh occurrence of this pattern."""
        return Assign(self.lhs, self.rhs)


class PatternUniverse:
    """The bit universe ``AP`` of assignment patterns in a program."""

    def __init__(self, graph: FlowGraph) -> None:
        infos: Dict[str, PatternInfo] = {}
        for _node, _index, stmt in graph.assignments():
            infos.setdefault(stmt.pattern(), PatternInfo.of(stmt))
        # Sort for an ordering that is independent of block layout, so
        # repeated runs of the sinking step are deterministic.
        self._infos = {name: infos[name] for name in sorted(infos)}
        self.universe = Universe(self._infos)

    def __len__(self) -> int:
        return len(self._infos)

    def __iter__(self):
        return iter(self._infos.values())

    def info(self, pattern: str) -> PatternInfo:
        return self._infos[pattern]

    def patterns(self) -> Tuple[str, ...]:
        return tuple(self._infos)

    def members(self, vector: int) -> Tuple[PatternInfo, ...]:
        return tuple(self._infos[name] for name in self.universe.members(vector))


def blocks_sinking(stmt: Statement, info: PatternInfo) -> bool:
    """Does ``stmt`` block the sinking of pattern ``info``?

    Blocked by an instruction that modifies an operand of ``t``, uses
    ``x``, or modifies ``x`` (Section 3, Definition 3.2 discussion).
    """
    modified = stmt.modified()
    if modified is not None and (modified in info.rhs_variables or modified == info.lhs):
        return True
    return info.lhs in stmt.used()


def sinking_candidate_index(
    statements: Tuple[Statement, ...],
    info: PatternInfo,
    virtually_used: frozenset[str] = frozenset(),
) -> Optional[int]:
    """The index of the sinking candidate of ``info`` in ``statements``.

    A candidate is an occurrence not followed by any blocking
    instruction; at most the last occurrence qualifies, so a single
    backward scan suffices: walk from the end, and the first occurrence
    met before any blocker is the candidate.

    ``virtually_used`` carries the globals virtually used at the exit of
    the end node (footnote 2): a pattern assigning one of them is
    blocked *after* every statement and hence never a candidate there.
    """
    if info.lhs in virtually_used:
        return None
    for index in range(len(statements) - 1, -1, -1):
        stmt = statements[index]
        if isinstance(stmt, Assign) and stmt.pattern() == info.pattern:
            return index
        if blocks_sinking(stmt, info):
            return None
    return None


def local_predicates(
    graph: FlowGraph, patterns: PatternUniverse, node: str
) -> Tuple[int, int]:
    """``(LOCDELAYED_n, LOCBLOCKED_n)`` bit-vectors for block ``node``."""
    statements = graph.statements(node)
    virtually_used = graph.globals if node == graph.end else frozenset()
    loc_delayed = 0
    loc_blocked = 0
    for info in patterns:
        bit = patterns.universe.bit(info.pattern)
        if sinking_candidate_index(statements, info, virtually_used) is not None:
            loc_delayed |= bit
        if any(blocks_sinking(stmt, info) for stmt in statements):
            loc_blocked |= bit
        elif node == graph.end and info.lhs in graph.globals:
            # Virtual use of globals at the end node (paper footnote 2).
            loc_blocked |= bit
    return loc_delayed, loc_blocked


def local_predicate_table(
    graph: FlowGraph, patterns: PatternUniverse
) -> Dict[str, Tuple[int, int]]:
    """Local predicates for every block."""
    return {node: local_predicates(graph, patterns, node) for node in graph.nodes()}


def candidate_locations(graph: FlowGraph, patterns: PatternUniverse) -> List[Tuple[str, int, str]]:
    """All sinking candidates as ``(block, index, pattern)`` triples."""
    locations: List[Tuple[str, int, str]] = []
    for node in graph.nodes():
        statements = graph.statements(node)
        virtually_used = graph.globals if node == graph.end else frozenset()
        for info in patterns:
            index = sinking_candidate_index(statements, info, virtually_used)
            if index is not None:
                locations.append((node, index, info.pattern))
    return locations
