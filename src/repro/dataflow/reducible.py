"""Reducibility and the round-robin fast path (Section 6.1.1).

"For well-structured flow graphs the efficient bit-vector techniques
[19, 20, 29] become applicable, yielding an almost linear complexity in
terms of fast bit-vector operations.  For arbitrary control flow
structures, however, the slotwise approach of [10] is the best we can
do."

This module supplies both halves of that sentence:

* :func:`is_reducible` — T1/T2 interval reduction: collapse self-loops
  (T1) and single-predecessor nodes into their predecessor (T2); the
  graph is reducible iff it collapses to a single node;
* :func:`solve_round_robin` — the Kam/Ullman iterative algorithm [19]:
  sweep the blocks in reverse postorder (postorder for backward
  problems) until a sweep changes nothing.  For reducible graphs and
  rapid frameworks (all bit-vector problems here are) it converges in
  ``d(G) + 3`` sweeps where ``d`` is the loop-connectedness — the
  "almost linear" bound; on irreducible graphs it still converges, just
  without the sweep bound.

The result is bit-identical to the worklist solver's
(:func:`repro.dataflow.framework.solve`) — a test asserts it — and the
sweep counter makes the Section 6.1.1 claim measurable.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..ir.cfg import FlowGraph
from .framework import FORWARD, Analysis, Result

__all__ = ["is_reducible", "loop_connectedness", "solve_round_robin"]


def is_reducible(graph: FlowGraph) -> bool:
    """T1/T2 reducibility test on the reachable subgraph."""
    # Work on plain adjacency maps over reachable nodes.
    reachable: Set[str] = set()
    stack = [graph.start]
    while stack:
        node = stack.pop()
        if node in reachable:
            continue
        reachable.add(node)
        stack.extend(graph.successors(node))

    succ: Dict[str, Set[str]] = {
        n: {m for m in graph.successors(n) if m in reachable} for n in reachable
    }
    pred: Dict[str, Set[str]] = {n: set() for n in reachable}
    for n, targets in succ.items():
        for m in targets:
            pred[m].add(n)

    changed = True
    while changed and len(succ) > 1:
        changed = False
        for node in list(succ):
            # T1: remove a self-loop.
            if node in succ[node]:
                succ[node].discard(node)
                pred[node].discard(node)
                changed = True
            # T2: a node (not the start) with exactly one predecessor is
            # absorbed into it.
            if node != graph.start and len(pred[node]) == 1:
                (parent,) = pred[node]
                succ[parent].discard(node)
                for target in succ[node]:
                    if target != parent:
                        succ[parent].add(target)
                        pred[target].add(parent)
                    pred[target].discard(node)
                del succ[node]
                del pred[node]
                changed = True
                break
    return len(succ) == 1


def _postorder_from_start(graph: FlowGraph) -> List[str]:
    order: List[str] = []
    seen: Set[str] = set()
    stack: List[Tuple[str, int]] = [(graph.start, 0)]
    seen.add(graph.start)
    while stack:
        node, index = stack.pop()
        successors = graph.successors(node)
        if index < len(successors):
            stack.append((node, index + 1))
            nxt = successors[index]
            if nxt not in seen:
                seen.add(nxt)
                stack.append((nxt, 0))
        else:
            order.append(node)
    return order


def loop_connectedness(graph: FlowGraph) -> int:
    """An upper bound for ``d(G)`` — the maximal number of retreating
    edges on any acyclic path, which governs the Kam/Ullman sweep bound.

    We return the total retreating-edge count of a DFS spanning tree
    (an edge ``(u, v)`` retreats when ``v``'s postorder number is not
    below ``u``'s).  Any acyclic path uses each retreating edge at most
    once, so this bounds ``d(G)`` from above — enough for asserting
    ``sweeps ≤ d + 3``."""
    postorder = _postorder_from_start(graph)
    number = {node: i for i, node in enumerate(postorder)}
    retreating = [
        (u, v)
        for u in postorder
        for v in graph.successors(u)
        if v in number and number[v] >= number[u]
    ]
    return len(retreating)


def solve_round_robin(analysis: Analysis) -> Tuple[Result, int]:
    """Kam/Ullman round-robin sweeps; returns ``(result, sweeps)``.

    Produces exactly the same fixpoint as the worklist solver.
    """
    graph = analysis.graph
    universe = analysis.universe
    forward = analysis.direction == FORWARD
    all_paths = analysis.confluence == "all"
    top = universe.full if all_paths else 0

    if forward:
        sources = graph.predecessors
        boundary_node = graph.start
        sweep_order = list(reversed(_postorder_from_start(graph)))
    else:
        sources = graph.successors
        boundary_node = graph.end
        sweep_order = _postorder_from_start(graph)
    # Unreachable-from-start blocks (none in validated graphs) would be
    # appended here; validation guarantees full coverage.
    for node in graph.nodes():
        if node not in sweep_order:
            sweep_order.append(node)

    meet_in: Dict[str, int] = {node: top for node in graph.nodes()}
    meet_in[boundary_node] = analysis.boundary()
    out: Dict[str, int] = {}

    sweeps = 0
    changed = True
    while changed:
        changed = False
        sweeps += 1
        for node in sweep_order:
            if node != boundary_node:
                value = top
                if all_paths:
                    for source in sources(node):
                        value &= out.get(source, top)
                else:
                    for source in sources(node):
                        value |= out.get(source, top)
                meet_in[node] = value
            new_out = analysis.transfer(node, meet_in[node])
            if out.get(node) != new_out:
                out[node] = new_out
                changed = True

    if forward:
        entry, exit_ = meet_in, out
    else:
        entry, exit_ = out, meet_in
    result = Result(
        universe=universe,
        entry=entry,
        exit=exit_,
        transfer_evaluations=sweeps * len(sweep_order),
    )
    return result, sweeps
