"""Live variable analysis — the complement of Table 1's dead analysis.

The paper's reference [24] (Kou, "On live-dead analysis for global data
flow problems") treats liveness and deadness as the two faces of one
problem: ``x`` is *live* at a point when some path to ``e`` uses ``x``
before redefining it, and *dead* otherwise.  With the paper's all-paths
dead system solved for the greatest fixpoint, the pointwise complement

    LIVE(p) = V \\ DEAD(p)

holds exactly — a test asserts it on random programs.  We provide the
direct may-analysis anyway: it is the formulation most compiler texts
use, it exercises the union-confluence path of the generic solver, and
having both makes the duality checkable instead of assumed.
"""

from __future__ import annotations

from typing import List, Sequence

from ..ir.cfg import FlowGraph
from ..ir.stmts import Statement
from .bitvec import Universe
from .framework import BACKWARD, Analysis, Result, solve

__all__ = ["LiveVariables", "analyze_live"]


def _instruction_transfer(universe: Universe, stmt: Statement, x_live: int) -> int:
    """``N-LIVE_ι`` from ``X-LIVE_ι``: kill the definition, add the uses."""
    modified = stmt.modified()
    if modified is not None and modified in universe:
        x_live &= ~universe.bit(modified)
    return x_live | universe.mask(stmt.used())


class _LiveAnalysis(Analysis):
    direction = BACKWARD
    confluence = "any"

    def boundary(self) -> int:
        # Globals are (virtually) used at the exit of e.
        return self.universe.mask(self.graph.globals)

    def transfer(self, node: str, value: int) -> int:
        for stmt in reversed(self.graph.statements(node)):
            value = _instruction_transfer(self.universe, stmt, value)
        return value


class LiveVariables:
    """Solved live variable information with per-instruction access."""

    def __init__(self, graph: FlowGraph, result: Result) -> None:
        self._graph = graph
        self._result = result
        self.universe = result.universe

    def entry(self, node: str) -> int:
        return self._result.entry[node]

    def exit(self, node: str) -> int:
        return self._result.exit[node]

    def after_each(self, node: str) -> List[int]:
        """``X-LIVE`` after each instruction of block ``node``."""
        statements: Sequence[Statement] = self._graph.statements(node)
        after = [0] * len(statements)
        value = self._result.exit[node]
        for index in range(len(statements) - 1, -1, -1):
            after[index] = value
            value = _instruction_transfer(self.universe, statements[index], value)
        return after

    def is_live_after(self, node: str, index: int, variable: str) -> bool:
        if variable not in self.universe:
            return False
        return self.universe.test(self.after_each(node)[index], variable)

    def live_at_entry(self, node: str):
        return self.universe.members(self.entry(node))

    def live_at_exit(self, node: str):
        return self.universe.members(self.exit(node))


def analyze_live(graph: FlowGraph) -> LiveVariables:
    """Run classical live variable analysis on ``graph``."""
    universe = Universe(sorted(graph.variables()))
    return LiveVariables(graph, solve(_LiveAnalysis(graph, universe)))
