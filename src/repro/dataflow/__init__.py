"""Dataflow analyses of the paper (Tables 1 and 2) and their machinery."""

from .bitvec import Universe
from .dead import DeadVariableAnalysis, DeadVariables, analyze_dead
from .delay import DelayabilityResult, analyze_delayability
from .faint import FaintVariables, analyze_faint
from .framework import Analysis, Result, solve
from .live import LiveVariables, analyze_live
from .pressure import PressureProfile, measure_pressure
from .reducible import is_reducible, loop_connectedness, solve_round_robin
from .patterns import (
    PatternInfo,
    PatternUniverse,
    blocks_sinking,
    candidate_locations,
    local_predicate_table,
    local_predicates,
    sinking_candidate_index,
)

__all__ = [
    "Universe",
    "DeadVariableAnalysis",
    "DeadVariables",
    "analyze_dead",
    "DelayabilityResult",
    "analyze_delayability",
    "FaintVariables",
    "analyze_faint",
    "Analysis",
    "Result",
    "solve",
    "is_reducible",
    "loop_connectedness",
    "solve_round_robin",
    "LiveVariables",
    "analyze_live",
    "PatternInfo",
    "PatternUniverse",
    "blocks_sinking",
    "candidate_locations",
    "local_predicate_table",
    "local_predicates",
    "sinking_candidate_index",
]
