"""Faint variable analysis (paper Table 1, right system).

A variable ``x`` is **faint** at a point if on every path to ``e`` every
rhs occurrence of ``x`` is either preceded by a modification of ``x`` or
appears in an assignment whose own left-hand side is faint.  Faintness
generalises deadness (Figure 9: ``x := x + 1`` in a loop whose value
never reaches a relevant statement is faint but not dead).

Equation system, slotwise simultaneously for all variables ``z``::

    N-FAINT_ι(z) = ¬RELV-USED_ι(z) · (X-FAINT_ι(z) + MOD_ι(z))
                   · (X-FAINT_ι(lhs_ι) + ¬ASS-USED_ι(z))
    X-FAINT_ι(z) = Π_{ι' ∈ succ(ι)} N-FAINT_ι'(z)

The third conjunct couples the ``z`` slot to the ``lhs_ι`` slot of the
*same* vector, so the problem "does not have a bit-vector form" (paper
Section 5.2): slots are not independent.  It is nevertheless monotone on
the meet lattice, so two equivalent solution strategies exist here:

* ``method="slot"`` — the paper's formulation verbatim: one worklist
  entry per slot ``(ι, x)``, with the extra update of the rhs-variable
  slots whenever a ``(ι, lhs_ι)`` slot is processed successfully;
* ``method="instruction"`` — instruction-level worklist re-evaluating an
  instruction's whole vector at once (the vectorised engineering
  variant; the lhs dependency is subsumed by the full-vector transfer);
* ``method="block"`` — block-level worklist folding the instruction
  transfer over each block in reverse.

All three compute the greatest solution; tests assert they agree.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..ir.cfg import FlowGraph
from ..ir.stmts import Assign, Statement
from .bitvec import Universe
from .framework import BACKWARD, Analysis, Result, solve

__all__ = ["FaintVariables", "analyze_faint"]


def _instruction_transfer(universe: Universe, stmt: Statement, x_faint: int) -> int:
    """``N-FAINT_ι`` from ``X-FAINT_ι`` for one instruction (vectorised)."""
    if isinstance(stmt, Assign):
        # Assignments are never relevant: first conjunct is all-true.
        lhs_bit = universe.bit(stmt.lhs) if stmt.lhs in universe else 0
        n_faint = x_faint | lhs_bit
        if not x_faint & lhs_bit:
            # lhs is not faint after ι: rhs variables are really used here.
            n_faint &= ~universe.mask(stmt.rhs.variables())
        return n_faint
    # out / branch / skip: no MOD, no ASS-USED; relevant uses kill faintness.
    return x_faint & ~universe.mask(stmt.relevant_used())


class _BlockFaintAnalysis(Analysis):
    direction = BACKWARD

    def boundary(self) -> int:
        return self.universe.full & ~self.universe.mask(self.graph.globals)

    def transfer(self, node: str, value: int) -> int:
        for stmt in reversed(self.graph.statements(node)):
            value = _instruction_transfer(self.universe, stmt, value)
        return value


class FaintVariables:
    """Solved faint variable information with per-instruction access."""

    def __init__(
        self,
        graph: FlowGraph,
        universe: Universe,
        entry: Dict[str, int],
        exit_: Dict[str, int],
        evaluations: int,
    ) -> None:
        self._graph = graph
        self.universe = universe
        self._entry = entry
        self._exit = exit_
        #: Instruction (or block) transfer evaluations — solver work measure.
        self.transfer_evaluations = evaluations

    def entry(self, node: str) -> int:
        return self._entry[node]

    def exit(self, node: str) -> int:
        return self._exit[node]

    def after_each(self, node: str) -> List[int]:
        """``X-FAINT`` after each instruction of block ``node``."""
        statements: Sequence[Statement] = self._graph.statements(node)
        after = [0] * len(statements)
        value = self._exit[node]
        for index in range(len(statements) - 1, -1, -1):
            after[index] = value
            value = _instruction_transfer(self.universe, statements[index], value)
        return after

    def is_faint_after(self, node: str, index: int, variable: str) -> bool:
        if variable not in self.universe:
            return False
        return self.universe.test(self.after_each(node)[index], variable)

    def faint_at_entry(self, node: str) -> Tuple[str, ...]:
        return self.universe.members(self._entry[node])

    def faint_at_exit(self, node: str) -> Tuple[str, ...]:
        return self.universe.members(self._exit[node])


def analyze_faint(graph: FlowGraph, method: str = "instruction") -> FaintVariables:
    """Run the faint variable analysis of Table 1 on ``graph``."""
    universe = Universe(sorted(graph.variables()))
    if method == "block":
        result: Result = solve(_BlockFaintAnalysis(graph, universe))
        return FaintVariables(
            graph, universe, result.entry, result.exit, result.transfer_evaluations
        )
    if method == "instruction":
        return _solve_instruction_level(graph, universe)
    if method == "slot":
        return _solve_slotwise(graph, universe)
    raise ValueError(f"unknown method {method!r}")


def _solve_instruction_level(graph: FlowGraph, universe: Universe) -> FaintVariables:
    """The paper's instruction-level worklist (Section 5.2).

    ``n_faint[node][k]`` is ``N-FAINT`` of instruction ``k`` of ``node``;
    for an empty block the single entry is the block's pass-through value.
    The worklist holds instruction positions; re-evaluating position ``k``
    recomputes its whole vector, which subsumes the paper's extra update
    of slots ``(ι, z)`` for rhs variables ``z`` whenever ``(ι, lhs_ι)``
    changed — the lhs slot lives in the successor vector this transfer
    reads.
    """
    top = universe.full
    boundary = top & ~universe.mask(graph.globals)

    n_faint: Dict[str, List[int]] = {
        node: [top] * max(1, len(graph.statements(node))) for node in graph.nodes()
    }

    def block_entry_value(node: str) -> int:
        return n_faint[node][0]

    def exit_value(node: str) -> int:
        if node == graph.end:
            return boundary
        value = top
        for successor in graph.successors(node):
            value &= block_entry_value(successor)
        return value

    # Positions are processed in deterministic FIFO order.
    pending: List[Tuple[str, int]] = []
    queued: set[Tuple[str, int]] = set()
    for node in graph.nodes():
        for index in range(len(n_faint[node]) - 1, -1, -1):
            slot = (node, index)
            pending.append(slot)
            queued.add(slot)

    evaluations = 0
    while pending:
        node, index = pending.pop(0)
        queued.discard((node, index))
        statements = graph.statements(node)
        if index == len(n_faint[node]) - 1:
            x_value = exit_value(node)
        else:
            x_value = n_faint[node][index + 1]
        if index < len(statements):
            new_value = _instruction_transfer(universe, statements[index], x_value)
        else:
            new_value = x_value  # empty block: pass-through
        evaluations += 1
        if new_value == n_faint[node][index]:
            continue
        n_faint[node][index] = new_value
        if index > 0:
            dependents: List[Tuple[str, int]] = [(node, index - 1)]
        else:
            dependents = [
                (pred, len(n_faint[pred]) - 1) for pred in graph.predecessors(node)
            ]
        for slot in dependents:
            if slot not in queued:
                queued.add(slot)
                pending.append(slot)

    entry = {node: n_faint[node][0] for node in graph.nodes()}
    exit_ = {node: exit_value(node) for node in graph.nodes()}
    return FaintVariables(graph, universe, entry, exit_, evaluations)


def _solve_slotwise(graph: FlowGraph, universe: Universe) -> FaintVariables:
    """The paper's formulation at its finest granularity: one worklist
    entry per *slot* ``(ι, x)``.

    "The only subtlety here is that a slot ``(ι, x)`` … may be influenced
    not only by the x-slot of some successor node, but also by the slot
    ``(ι, lhs_ι)``.  This must be taken care of by additionally updating
    the worklist with all slots ``(ι, z)``, where ``z`` is a right-hand
    side variable of ``ι``, whenever the slot ``(ι, lhs_ι)`` has been
    processed successfully."  (Section 5.2)

    Each slot flips at most once from true to false, giving the
    ``O(i·v)``-ish bound of Section 6.1.2 directly.
    """
    top = universe.full
    boundary = top & ~universe.mask(graph.globals)
    variables = universe.names

    n_faint: Dict[str, List[int]] = {
        node: [top] * max(1, len(graph.statements(node))) for node in graph.nodes()
    }

    def x_bit(node: str, index: int, var: str) -> bool:
        """``X-FAINT`` of position ``index`` at slot ``var``."""
        if index < len(n_faint[node]) - 1:
            return bool(universe.test(n_faint[node][index + 1], var))
        if node == graph.end:
            return bool(universe.test(boundary, var))
        for successor in graph.successors(node):
            if not universe.test(n_faint[successor][0], var):
                return False
        return True

    def evaluate(node: str, index: int, var: str) -> bool:
        statements = graph.statements(node)
        if index >= len(statements):
            return x_bit(node, index, var)  # empty block: pass-through
        stmt = statements[index]
        if isinstance(stmt, Assign):
            first = x_bit(node, index, var) or var == stmt.lhs
            second = x_bit(node, index, stmt.lhs) or var not in stmt.rhs.variables()
            return first and second
        if var in stmt.relevant_used():
            return False
        return x_bit(node, index, var)

    pending: List[Tuple[str, int, str]] = []
    queued: set = set()

    def enqueue(node: str, index: int, var: str) -> None:
        slot = (node, index, var)
        if slot not in queued:
            queued.add(slot)
            pending.append(slot)

    for node in graph.nodes():
        for index in range(len(n_faint[node]) - 1, -1, -1):
            for var in variables:
                enqueue(node, index, var)

    evaluations = 0
    while pending:
        node, index, var = pending.pop(0)
        queued.discard((node, index, var))
        evaluations += 1
        if not universe.test(n_faint[node][index], var):
            continue  # already false: monotone, cannot change back
        if evaluate(node, index, var):
            continue
        n_faint[node][index] &= ~universe.bit(var)

        # Dependents: the x-slots reading this N value...
        if index > 0:
            readers = [(node, index - 1)]
        else:
            readers = [(p, len(n_faint[p]) - 1) for p in graph.predecessors(node)]
        statements_of = graph.statements
        for reader_node, reader_index in readers:
            enqueue(reader_node, reader_index, var)
            # ...plus the paper's extra update: when this slot is the
            # lhs-slot of the reading assignment, its rhs slots depend
            # on it through the third conjunct.
            reader_statements = statements_of(reader_node)
            if reader_index < len(reader_statements):
                reader = reader_statements[reader_index]
                if isinstance(reader, Assign) and reader.lhs == var:
                    for rhs_var in reader.rhs.variables():
                        enqueue(reader_node, reader_index, rhs_var)

    entry = {node: n_faint[node][0] for node in graph.nodes()}

    def exit_value(node: str) -> int:
        if node == graph.end:
            return boundary
        value = top
        for successor in graph.successors(node):
            value &= n_faint[successor][0]
        return value

    exit_ = {node: exit_value(node) for node in graph.nodes()}
    return FaintVariables(graph, universe, entry, exit_, evaluations)
