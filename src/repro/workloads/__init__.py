"""Program generators for property tests and the Section 6 scaling study."""

from .generator import (
    diamond_chain,
    irreducible_mesh,
    loop_chain,
    peel_chain,
    random_arbitrary_graph,
    random_structured_program,
)

__all__ = [
    "diamond_chain",
    "irreducible_mesh",
    "loop_chain",
    "peel_chain",
    "random_arbitrary_graph",
    "random_structured_program",
]
