"""Random and parametric program generators.

The paper evaluates its algorithm analytically (Section 6); to *measure*
those claims we need program families whose size parameters — blocks
``b``, instructions ``i``, variables ``v``, assignment patterns ``a`` —
we control:

* :func:`random_structured_program` — seeded random structured programs
  (sequences, branches, loops), exercising the parser and the common
  reducible-flow case; used by the property-based tests as well;
* :func:`random_arbitrary_graph` — seeded random flow graphs with extra
  forward/backward/cross edges, routinely irreducible; the paper's
  algorithm handles these where structured-program techniques do not;
* :func:`diamond_chain` / :func:`loop_chain` — deterministic scaling
  families for the Section 6 complexity study: each segment contains
  genuinely partially dead code, so optimisation work grows linearly in
  the parameter and the measured exponents are meaningful.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..ir.builder import GraphBuilder
from ..ir.cfg import FlowGraph
from ..ir.parser import parse_program

__all__ = [
    "random_structured_program",
    "random_arbitrary_graph",
    "diamond_chain",
    "loop_chain",
    "irreducible_mesh",
    "peel_chain",
]


def _random_expr(rng: random.Random, variables: Sequence[str]) -> str:
    roll = rng.random()
    if roll < 0.25:
        return str(rng.randint(0, 9))
    if roll < 0.5:
        return rng.choice(variables)
    op = rng.choice(("+", "-", "*"))
    return f"{rng.choice(variables)} {op} {_random_atom(rng, variables)}"


def _random_atom(rng: random.Random, variables: Sequence[str]) -> str:
    if rng.random() < 0.5:
        return rng.choice(variables)
    return str(rng.randint(0, 9))


def _random_simple_statement(rng: random.Random, variables: Sequence[str]) -> str:
    if rng.random() < 0.2:
        return f"out({_random_expr(rng, variables)});"
    return f"{rng.choice(variables)} := {_random_expr(rng, variables)};"


def _random_block_body(
    rng: random.Random, variables: Sequence[str], depth: int, budget: List[int]
) -> List[str]:
    lines: List[str] = []
    statements = rng.randint(1, 4)
    for _ in range(statements):
        if budget[0] <= 0:
            break
        roll = rng.random()
        if roll < 0.15 and depth > 0:
            budget[0] -= 1
            cond = "?" if rng.random() < 0.6 else f"({rng.choice(variables)} > 0)"
            lines.append(f"if {cond} {{")
            lines += [
                "  " + line
                for line in _random_block_body(rng, variables, depth - 1, budget)
            ]
            if rng.random() < 0.7:
                lines.append("} else {")
                lines += [
                    "  " + line
                    for line in _random_block_body(rng, variables, depth - 1, budget)
                ]
            lines.append("}")
        elif roll < 0.25 and depth > 0:
            budget[0] -= 1
            cond = "?" if rng.random() < 0.7 else f"({rng.choice(variables)} > 0)"
            lines.append(f"while {cond} {{")
            lines += [
                "  " + line
                for line in _random_block_body(rng, variables, depth - 1, budget)
            ]
            lines.append("}")
        else:
            budget[0] -= 1
            lines.append(_random_simple_statement(rng, variables))
    return lines


def random_structured_program(
    seed: int = 0,
    size: int = 20,
    n_variables: int = 5,
    max_depth: int = 3,
) -> FlowGraph:
    """A seeded random structured program of roughly ``size`` statements.

    A trailing ``out`` over all variables keeps part of the computation
    relevant, so programs are neither fully dead nor fully live.
    """
    rng = random.Random(seed)
    variables = [f"v{i}" for i in range(max(1, n_variables))]
    budget = [max(1, size)]
    lines: List[str] = []
    while budget[0] > 0:
        lines += _random_block_body(rng, variables, max_depth, budget)
    # Anchor a random subset of variables as observable outputs.
    observed = rng.sample(variables, k=max(1, len(variables) // 2))
    for name in observed:
        lines.append(f"out({name});")
    return parse_program("\n".join(lines))


def random_arbitrary_graph(
    seed: int = 0,
    n_blocks: int = 10,
    n_variables: int = 5,
    extra_edges: Optional[int] = None,
    statements_per_block: int = 3,
) -> FlowGraph:
    """A seeded random flow graph with arbitrary (often irreducible) shape.

    A backbone chain ``s → 1 → … → n → e`` guarantees every node lies on
    an ``s``–``e`` path; ``extra_edges`` random forward/backward edges
    (default ``n_blocks``) add merges, branches and loops.
    """
    rng = random.Random(seed)
    variables = [f"v{i}" for i in range(max(1, n_variables))]
    builder = GraphBuilder()
    names = [str(i) for i in range(1, n_blocks + 1)]
    for name in names:
        count = rng.randint(0, statements_per_block)
        body = " ".join(_random_simple_statement(rng, variables) for _ in range(count))
        builder.block(name, body or None)
    last = names[-1]
    builder.block(last, f"out({rng.choice(variables)});")

    builder.chain("s", *names, "e")
    edges = {(str(i), str(i + 1)) for i in range(1, n_blocks)}
    edges |= {("s", "1"), (last, "e")}
    wanted = extra_edges if extra_edges is not None else n_blocks
    attempts = 0
    added = 0
    while added < wanted and attempts < 20 * wanted:
        attempts += 1
        src = rng.choice(names)
        dst = rng.choice(names + ["e"])
        if src == dst or (src, dst) == (last, "e"):
            continue
        if dst == "e" and rng.random() < 0.7:
            continue  # keep most extra edges internal
        if (src, dst) in edges:
            continue
        edges.add((src, dst))
        builder.edge(src, dst)
        added += 1
    return builder.build()


def diamond_chain(segments: int, live_every: int = 2) -> FlowGraph:
    """A deterministic chain of ``segments`` diamonds with partially dead
    assignments.

    Segment ``k`` computes ``t := p + k`` before a fork; one branch
    redefines ``t``, the join uses it.  Every ``live_every``-th segment
    also publishes ``t``, anchoring long live ranges.  PDE has one
    genuine sinking + elimination opportunity per segment, so total
    optimisation work scales linearly with ``segments``.
    """
    builder = GraphBuilder()
    previous = "s"
    for k in range(1, segments + 1):
        head, left, right, join = (
            f"h{k}",
            f"l{k}",
            f"r{k}",
            f"j{k}",
        )
        builder.block(head, f"t := p + {k};")
        builder.block(left, None)
        builder.block(right, f"t := {k};")
        use = f"q := t * 2;" + (f" out(q);" if k % live_every == 0 else "")
        builder.block(join, use)
        builder.edge(previous, head)
        builder.edges((head, left), (head, right), (left, join), (right, join))
        previous = join
    builder.block("fin", "out(q);")
    builder.edge(previous, "fin")
    builder.edge("fin", "e")
    return builder.build()


def peel_chain(depth: int) -> FlowGraph:
    """An adversarial family where the round count ``r`` grows linearly —
    the tight case for the Section 6.3 conjecture.

    One block holds the dependency chain ``v1 := v0+1; v2 := v1+1; …;
    v_depth := v_{depth-1}+1``; only ``v_depth`` is (partially) used.
    Each statement blocks its predecessor — the use of ``v_{i}`` in
    ``v_{i+1} := v_i + 1`` pins ``v_i``'s definition — so each global
    round peels exactly one statement off the end of the chain
    (sinking-sinking effects, Figure 10, chained ``depth`` times).
    """
    builder = GraphBuilder()
    chain = "; ".join(f"v{i} := v{i - 1} + 1" for i in range(1, depth + 1))
    builder.block("chain", chain + ";")
    builder.block("user", f"out(v{depth});")
    builder.block("skipper", f"v{depth} := 0; out(v{depth});")
    builder.block("join", None)
    builder.chain("s", "chain")
    builder.edges(("chain", "user"), ("chain", "skipper"))
    builder.edges(("user", "join"), ("skipper", "join"), ("join", "e"))
    return builder.build()


def irreducible_mesh(segments: int) -> FlowGraph:
    """A chain of two-entry (irreducible) loop constructs — the Figure 5
    pattern scaled.

    Segment ``k``: a fork enters a loop ``l ⇄ r`` at both nodes; the
    loop exits through ``r``.  An assignment before each segment is used
    only after it, so PDE must carry it *across* the irreducible loop
    exactly as in Figure 6.  Structured-program techniques (and
    reducible-only algorithms such as [27]) cannot process these graphs
    at all; this family feeds the slotwise worst-case measurements of
    Section 6.1.
    """
    builder = GraphBuilder()
    previous = "s"
    for k in range(1, segments + 1):
        head, fork, left, right, exit_ = (
            f"h{k}",
            f"f{k}",
            f"l{k}",
            f"r{k}",
            f"x{k}",
        )
        builder.block(head, f"v := w + {k};")
        builder.block(fork, None)
        builder.block(left, None)
        builder.block(right, None)
        builder.block(exit_, f"out(v + {k});")
        builder.edge(previous, head)
        builder.edges(
            (head, fork),
            (fork, left),
            (fork, right),
            (left, right),
            (right, left),
            (right, exit_),
        )
        previous = exit_
    builder.edge(previous, "e")
    return builder.build()


def loop_chain(loops: int) -> FlowGraph:
    """A deterministic chain of ``loops`` loops, each containing a
    loop-invariant pair used only after the loop (the Figure 3 pattern).

    Exercises the expensive part of the algorithm: every loop needs
    several global rounds to drain, so the iteration count ``r`` grows
    with the parameter.
    """
    builder = GraphBuilder()
    previous = "s"
    for k in range(1, loops + 1):
        body, latch, exit_ = f"b{k}", f"t{k}", f"x{k}"
        builder.block(body, f"y := a + {k}; c := y - e{k};")
        builder.block(latch, None)
        builder.block(exit_, f"out(c);")
        builder.edge(previous, body)
        builder.edges((body, latch), (latch, body), (latch, exit_))
        previous = exit_
    builder.edge(previous, "e")
    return builder.build()
