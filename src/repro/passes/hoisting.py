"""Assignment hoisting — the mirror image of the sinking step.

Related-work substrate: "in [9] Dhamdhere proposed an extension of
partial redundancy elimination to assignment movement, where, in
contrast to our approach, assignments are **hoisted** rather than sunk,
which does not allow any elimination of partially dead code."

The machinery mirrors Table 2 exactly, with the flow direction
reversed:

* a **hoisting candidate** of ``α ≡ x := t`` is an occurrence *not
  preceded* in its block by an instruction that blocks ``α`` (the
  blocking conditions are symmetric: modify an operand of ``t``, use
  ``x``, modify ``x``);
* ``X-HOISTABLE_n`` / ``N-HOISTABLE_n``: candidates can move to the
  exit / entry of ``n``; the meet runs over *successors*, and nothing
  is hoistable above ``s``;
* insertion: at the exit of ``n`` when hoistable there but blocked in
  ``n``; at the entry of ``n`` when some predecessor stops carrying the
  pattern.

The benches verify the paper's point: hoisting alone (even iterated
with dce) leaves every partially dead assignment of the figures corpus
in place — moving code against the control flow makes values *more*
universally live, never less.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ir.cfg import FlowGraph
from ..ir.splitting import split_critical_edges
from ..ir.stmts import Statement
from ..dataflow.framework import BACKWARD, Analysis, solve
from ..dataflow.patterns import PatternInfo, PatternUniverse, blocks_sinking

__all__ = ["HoistingReport", "assignment_hoisting", "hoist_then_eliminate"]


def hoisting_candidate_index(
    statements: Tuple[Statement, ...], info: PatternInfo
) -> Optional[int]:
    """The first occurrence of ``info`` not preceded by a blocker."""
    from ..ir.stmts import Assign

    for index, stmt in enumerate(statements):
        if isinstance(stmt, Assign) and stmt.pattern() == info.pattern:
            return index
        if blocks_sinking(stmt, info):
            return None
    return None


def _local_predicates(
    graph: FlowGraph, patterns: PatternUniverse, node: str
) -> Tuple[int, int]:
    statements = graph.statements(node)
    loc_hoistable = 0
    loc_blocked = 0
    for info in patterns:
        bit = patterns.universe.bit(info.pattern)
        if hoisting_candidate_index(statements, info) is not None:
            loc_hoistable |= bit
        if any(blocks_sinking(stmt, info) for stmt in statements):
            loc_blocked |= bit
    if node == graph.start:
        # Unlike sinking — where draining past e proves the value unused —
        # a value hoisted to the top is still needed below: the start
        # node blocks everything, forcing an insertion at its exit.
        loc_blocked = patterns.universe.full
    return loc_hoistable, loc_blocked


class _Hoistability(Analysis):
    direction = BACKWARD

    def __init__(self, graph, patterns, locals_):
        super().__init__(graph, patterns.universe)
        self._locals = locals_

    def boundary(self) -> int:
        return 0  # X-HOISTABLE_e = false: nothing rises from beyond e

    def transfer(self, node: str, x_hoistable: int) -> int:
        loc_hoistable, loc_blocked = self._locals[node]
        return loc_hoistable | (x_hoistable & ~loc_blocked)


@dataclass
class HoistingReport:
    removed: List[Tuple[str, int, str]] = field(default_factory=list)
    inserted: List[Tuple[str, str, str]] = field(default_factory=list)
    changed: bool = False


def assignment_hoisting(graph: FlowGraph) -> HoistingReport:
    """One hoisting pass over a critical-edge-free ``graph`` (in place)."""
    patterns = PatternUniverse(graph)
    locals_ = {node: _local_predicates(graph, patterns, node) for node in graph.nodes()}
    result = solve(_Hoistability(graph, patterns, locals_))
    # Backward solve: result.exit is the meet over successors
    # (X-HOISTABLE), result.entry the transferred value (N-HOISTABLE).
    n_hoistable = result.entry
    x_hoistable = result.exit

    def x_insert(node: str) -> int:
        _h, blocked = locals_[node]
        return x_hoistable[node] & blocked

    def n_insert(node: str) -> int:
        value = 0
        for pred in graph.predecessors(node):
            value |= ~x_hoistable[pred]
        return n_hoistable[node] & value & patterns.universe.full

    report = HoistingReport()
    entry_inserts: Dict[str, List] = {node: [] for node in graph.nodes()}
    exit_inserts: Dict[str, List] = {node: [] for node in graph.nodes()}

    for node in graph.nodes():
        for info in patterns.members(n_insert(node)):
            entry_inserts[node].append(info)
            report.inserted.append((node, "entry", info.pattern))
        exit_infos = patterns.members(x_insert(node))
        if exit_infos and graph.branch_of(node) is not None:
            # The block transfers control through a trailing Branch, which
            # must stay last.  The exit of the block is the same set of
            # program points as the entries of its successors (each has a
            # single predecessor on a split graph), so place the
            # instances there.
            for successor in graph.successors(node):
                assert len(graph.predecessors(successor)) == 1, (
                    "exit insertion below a branch needs split edges"
                )
                for info in exit_infos:
                    entry_inserts[successor].append(info)
                    report.inserted.append((successor, "entry", info.pattern))
        else:
            for info in exit_infos:
                exit_inserts[node].append(info)
                report.inserted.append((node, "exit", info.pattern))

    new_statements: Dict[str, List[Statement]] = {}
    for node in graph.nodes():
        statements = list(graph.statements(node))
        removals = []
        if node != graph.start:
            # Candidates already at the very top stay put: s has no
            # predecessors to re-insert them from (the mirror of
            # sinking's safe drop at e does not exist upwards).
            for info in patterns:
                index = hoisting_candidate_index(tuple(statements), info)
                if index is not None:
                    removals.append((index, info.pattern))
        for index, pattern in sorted(removals, reverse=True):
            del statements[index]
            report.removed.append((node, index, pattern))
        statements = (
            [info.instance() for info in entry_inserts[node]]
            + statements
            + [info.instance() for info in exit_inserts[node]]
        )
        new_statements[node] = statements

    for node, statements in new_statements.items():
        if list(graph.statements(node)) != statements:
            graph.set_statements(node, statements)
            report.changed = True
    return report


def hoist_then_eliminate(graph: FlowGraph, max_rounds: int = 50):
    """The Dhamdhere-style baseline: iterate hoisting + dce to a fixpoint.

    Returns a :class:`repro.baselines.dce_only.BaselineResult`-shaped
    object via the baselines module to keep comparisons uniform.
    """
    from ..baselines.dce_only import BaselineResult
    from ..core.eliminate import dead_code_elimination

    original = split_critical_edges(graph)
    work = original.copy()
    eliminated = 0
    passes = 0
    for _ in range(max_rounds):
        elimination = dead_code_elimination(work)
        hoisting = assignment_hoisting(work)
        eliminated += len(elimination)
        passes += 2
        if not elimination.changed and not hoisting.changed:
            break
    return BaselineResult(
        original=original,
        graph=work,
        passes=passes,
        eliminated=eliminated,
        name="hoist+dce",
    )
