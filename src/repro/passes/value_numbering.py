"""Superlocal value numbering (the [27] comparison point).

Section 6.4 positions the paper's cost against "the algorithm for
global value numbering of [27], which requires reducible flow graphs
and guarantees optimality only for acyclic program structures".  We
implement the classic *extended-basic-block* value numbering: walk the
dominator tree with a scoped hash table from value expressions to the
register holding them, inheriting the table only across
single-predecessor edges — i.e. along EBB paths, where the inherited
bindings describe the unique execution path into the block.  A
recomputation of an available value becomes a copy.

(The full dominator-scoped variant is only sound on SSA form: a
non-dominating sibling can redefine an operand on *some* path into a
merge, so merge blocks must start fresh here.  Our SSA substrate exists
— `repro.ssa` — but keeping this pass on the plain IR keeps its output
directly comparable with the others.)

Scope and honesty notes:

* redundancy is detected along EBB paths only — a strictly weaker scope
  than dominator trees and far weaker than LCM; a test demonstrates the
  merge-redundancy gap exactly as Section 6.4's comparison implies;
* values are *syntactic up to commutativity* of ``+`` and ``*`` — no
  algebraic reasoning beyond operand ordering;
* a definition whose operands were redefined since kills the old value
  bindings (we number values, not variables: bindings are dropped when
  the holding register is overwritten).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ir.cfg import FlowGraph
from ..ir.exprs import BinOp, Const, Expr, UnaryOp, Var
from ..ir.splitting import split_critical_edges
from ..ir.stmts import Assign, Statement
from ..ssa.domtree import DominatorTree

__all__ = ["ValueNumberingReport", "value_numbering"]

_COMMUTATIVE = {"+", "*"}


@dataclass
class ValueNumberingReport:
    """What one value-numbering pass rewrote."""

    original: FlowGraph
    graph: FlowGraph
    #: ``(block, index)`` computations replaced by copies.
    replaced: List[Tuple[str, int]] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return bool(self.replaced)


class _ScopedTable:
    """A hash table with dominator-tree scoping (push/pop frames)."""

    def __init__(self) -> None:
        self._frames: List[Dict[Tuple, str]] = [{}]
        #: register -> keys it currently backs (for invalidation).
        self._backing: List[Dict[str, List[Tuple]]] = [{}]

    def push(self) -> None:
        self._frames.append({})
        self._backing.append({})

    def pop(self) -> None:
        self._frames.pop()
        self._backing.pop()

    def lookup(self, key: Tuple) -> Optional[str]:
        for frame in reversed(self._frames):
            if key in frame:
                value = frame[key]
                return value if value is not None else None
        return None

    def bind(self, key: Tuple, register: str) -> None:
        self._frames[-1][key] = register
        self._backing[-1].setdefault(register, []).append(key)

    def invalidate_register(self, register: str) -> None:
        """Drop every binding held in ``register`` (any frame) — done by
        shadowing with a tombstone in the current frame, so enclosing
        scopes are restored on pop."""
        for frame_index in range(len(self._frames)):
            for key in self._backing[frame_index].get(register, ()):
                if self._frames[frame_index].get(key) == register:
                    self._frames[-1][key] = None  # tombstone shadow


def _value_key(expr: Expr) -> Optional[Tuple]:
    """A hashable value identity for ``expr`` (None = not numbered)."""
    if isinstance(expr, BinOp):
        left = _operand_key(expr.left)
        right = _operand_key(expr.right)
        if left is None or right is None:
            return None
        if expr.op in _COMMUTATIVE and right < left:
            left, right = right, left
        return ("bin", expr.op, left, right)
    if isinstance(expr, UnaryOp):
        operand = _operand_key(expr.operand)
        if operand is None:
            return None
        return ("un", expr.op, operand)
    return None  # bare variables / constants: copies, not computations


def _operand_key(expr: Expr) -> Optional[Tuple]:
    if isinstance(expr, Var):
        return ("v", expr.name)
    if isinstance(expr, Const):
        return ("c", expr.value)
    return None  # nested compounds are not produced by the parser's 3-addr shapes


def _key_mentions(key: Tuple, register: str) -> bool:
    return ("v", register) in key[2:]


def value_numbering(graph: FlowGraph, split_edges: bool = True) -> ValueNumberingReport:
    """Run dominator-scoped value numbering; returns a transformed copy."""
    original = split_critical_edges(graph) if split_edges else graph.copy()
    work = original.copy()
    tree = DominatorTree(work)
    report = ValueNumberingReport(original=original, graph=work)
    table = _ScopedTable()  # rebound per block in the walk below

    def process_block(node: str) -> None:
        statements: List[Statement] = list(work.statements(node))
        changed = False
        for index, stmt in enumerate(statements):
            if isinstance(stmt, Assign):
                key = _value_key(stmt.rhs)
                if key is not None:
                    holder = table.lookup(key)
                    if holder is not None:
                        statements[index] = Assign(stmt.lhs, Var(holder))
                        report.replaced.append((node, index))
                        changed = True
                        key = None  # the copy defines no new value
                # The definition invalidates values held in (or built
                # from) the overwritten register.
                table.invalidate_register(stmt.lhs)
                _invalidate_dependents(table, stmt.lhs)
                if key is not None and not _key_mentions(key, stmt.lhs):
                    table.bind(key, stmt.lhs)
        if changed:
            work.set_statements(node, statements)

    def _invalidate_dependents(scoped: _ScopedTable, register: str) -> None:
        """Drop values whose operands include ``register``."""
        for frame_index in range(len(scoped._frames)):
            for key, holder in list(scoped._frames[frame_index].items()):
                if holder is not None and _key_mentions(key, register):
                    scoped._frames[-1][key] = None

    # Iterative dominator-tree walk with scoped frames.  A child with
    # more than one predecessor starts a fresh EBB: inherited bindings
    # would describe only one of the paths into it.
    fresh_table_at: Dict[str, bool] = {
        node: len(work.predecessors(node)) != 1 for node in work.nodes()
    }
    tables: Dict[str, _ScopedTable] = {}

    stack: List[Tuple[str, bool]] = [(work.start, False)]
    active: List[_ScopedTable] = []
    while stack:
        node, done = stack.pop()
        if done:
            tables[node].pop()
            active.pop()
            continue
        if fresh_table_at[node] or not active:
            current = _ScopedTable()
        else:
            current = active[-1]
        tables[node] = current
        active.append(current)
        current.push()
        table = current  # process_block reads the enclosing name
        process_block(node)
        stack.append((node, True))
        for child in reversed(tree.children[node]):
            stack.append((child, False))
    return report
