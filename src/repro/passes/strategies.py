"""Heuristic variants from the paper's conclusions (Section 7).

"In general, modifications of our algorithm should be applied that
limit the number of assignment sinking and dead (faint) code
elimination steps.  We are currently investigating heuristics guiding
this limitation, which range from simply cutting the global iteration
process after some given amount of time or a fixed number of iterations
to localizing the optimization process to 'hot areas'."

Two such modifications, with the ablation benches measuring the quality
they trade away:

* :func:`budgeted_pde` — cut the alternation after ``max_rounds``
  global rounds (quality is monotone in the budget; the bench plots the
  convergence curve);
* :func:`regional_pde` — localise to a block region ("hot area"): only
  assignments whose *entire* movement (all removals and insertions)
  stays inside the region are touched, and only region blocks are
  cleaned by dce — a sound restriction of the full transformation.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List

from ..ir.cfg import FlowGraph
from ..ir.splitting import split_critical_edges
from ..ir.stmts import Assign, Statement
from ..core.driver import OptimizationResult, OptimizationStats, pde
from ..core.eliminate import dead_code_elimination
from ..dataflow.dead import analyze_dead
from ..dataflow.delay import analyze_delayability
from ..dataflow.patterns import sinking_candidate_index

__all__ = ["budgeted_pde", "regional_pde"]


def budgeted_pde(graph: FlowGraph, max_rounds: int) -> OptimizationResult:
    """PDE cut off after ``max_rounds`` global rounds.

    Unlike :func:`repro.core.driver.pde` with ``max_rounds`` (which
    *raises* on non-termination — there it indicates a bug), hitting the
    budget here is the intended behaviour: the program is simply
    returned as-is, partially optimised but always semantically correct
    (every prefix of the alternation is a valid transformation
    sequence).
    """
    from ..core.sink import assignment_sinking

    split = split_critical_edges(graph)
    work = split.copy()
    stats = OptimizationStats()
    stats.original_instructions = split.instruction_count()
    stats.peak_instructions = stats.original_instructions
    for _ in range(max_rounds):
        elimination = dead_code_elimination(work)
        sinking = assignment_sinking(work)
        stats.rounds += 1
        stats.component_applications += 2
        stats.eliminated += len(elimination)
        stats.sunk_removed += len(sinking.removed)
        stats.sunk_inserted += len(sinking.inserted)
        stats.peak_instructions = max(stats.peak_instructions, work.instruction_count())
        if not elimination.changed and not sinking.changed:
            break
    stats.final_instructions = work.instruction_count()
    return OptimizationResult(original=split, graph=work, stats=stats, variant="pde")


def regional_pde(
    graph: FlowGraph, region: Iterable[str], max_rounds: int = 100
) -> OptimizationResult:
    """PDE localised to the block set ``region`` (a "hot area").

    Per round: dce restricted to region blocks; sinking restricted to
    patterns whose candidates *and* insertion points all lie inside the
    region (other patterns are left untouched entirely, keeping the
    restriction admissible).  Region names refer to the edge-split
    graph; synthetic ``S<m>_<n>`` nodes of in-region edges should be
    included by the caller — :func:`region_closure` helps.
    """
    split = split_critical_edges(graph)
    hot: FrozenSet[str] = frozenset(region)
    unknown = hot - set(split.nodes())
    if unknown:
        raise ValueError(f"region names not in the (split) graph: {sorted(unknown)}")

    work = split.copy()
    stats = OptimizationStats()
    stats.original_instructions = split.instruction_count()
    stats.peak_instructions = stats.original_instructions

    for _ in range(max_rounds):
        changed = _regional_dce(work, hot, stats)
        changed |= _regional_sink(work, hot, stats)
        stats.rounds += 1
        stats.component_applications += 2
        stats.peak_instructions = max(stats.peak_instructions, work.instruction_count())
        if not changed:
            break
    stats.final_instructions = work.instruction_count()
    return OptimizationResult(original=split, graph=work, stats=stats, variant="pde")


def region_closure(
    graph: FlowGraph, region: Iterable[str], include_frontier: bool = False
) -> FrozenSet[str]:
    """``region`` plus the synthetic nodes splitting in-region edges.

    ``include_frontier`` additionally adds the immediate successors of
    region blocks.  Sinking moves code *with* the control flow, so a
    region's win usually materialises at its exits — a hot loop without
    its exit blocks cannot drain (the insertion points would fall
    outside the region and :func:`regional_pde` would conservatively
    leave the pattern alone).
    """
    from ..ir.splitting import is_synthetic

    split = split_critical_edges(graph)
    hot = set(region)
    if include_frontier:
        for node in list(hot):
            if split.has_block(node):
                hot.update(split.successors(node))
        hot.discard(split.end)
    for node in split.nodes():
        if not is_synthetic(node):
            continue
        preds = split.predecessors(node)
        succs = split.successors(node)
        if all(p in hot for p in preds) and all(s in hot for s in succs):
            hot.add(node)
    return frozenset(hot)


def loop_regions(graph: FlowGraph, include_frontier: bool = True) -> FrozenSet[str]:
    """A structural 'hot area': the union of all natural loop bodies.

    The usual static heuristic when no profile exists — loops are where
    programs spend their time.  ``include_frontier`` adds the loop exit
    blocks, which sinking needs to realise the win (see
    :func:`region_closure`).
    """
    from ..ir.loops import natural_loops

    split = split_critical_edges(graph)
    hot: set = set()
    for loop in natural_loops(split):
        hot |= loop.body
    return region_closure(split, hot, include_frontier=include_frontier)


def _regional_dce(work: FlowGraph, hot: FrozenSet[str], stats) -> bool:
    dead = analyze_dead(work)
    changed = False
    for node in hot:
        statements = list(work.statements(node))
        if not statements:
            continue
        after = dead.after_each(node)
        kept: List[Statement] = []
        for index, stmt in enumerate(statements):
            if (
                isinstance(stmt, Assign)
                and stmt.lhs in dead.universe
                and dead.universe.test(after[index], stmt.lhs)
            ):
                stats.eliminated += 1
                changed = True
            else:
                kept.append(stmt)
        if len(kept) != len(statements):
            work.set_statements(node, kept)
    return changed


def _regional_sink(work: FlowGraph, hot: FrozenSet[str], stats) -> bool:
    delayability = analyze_delayability(work)
    patterns = delayability.patterns

    # A pattern is movable iff every block where anything would happen —
    # candidate removal, entry or exit insertion — lies in the region.
    movable = []
    for info in patterns:
        bit = patterns.universe.bit(info.pattern)
        sites: List[str] = []
        for node in work.nodes():
            virtually = work.globals if node == work.end else frozenset()
            if (
                sinking_candidate_index(work.statements(node), info, virtually)
                is not None
            ):
                sites.append(node)
            if delayability.n_insert(node) & bit or delayability.x_insert(node) & bit:
                sites.append(node)
        if sites and all(site in hot for site in sites):
            movable.append(info)

    changed = False
    inserts_entry = {node: [] for node in work.nodes()}
    inserts_exit = {node: [] for node in work.nodes()}
    removals = {node: [] for node in work.nodes()}
    for info in movable:
        bit = patterns.universe.bit(info.pattern)
        for node in work.nodes():
            virtually = work.globals if node == work.end else frozenset()
            index = sinking_candidate_index(work.statements(node), info, virtually)
            if index is not None:
                removals[node].append(index)
            if delayability.n_insert(node) & bit:
                inserts_entry[node].append(info.instance())
            if delayability.x_insert(node) & bit:
                inserts_exit[node].append(info.instance())

    for node in work.nodes():
        statements = list(work.statements(node))
        for index in sorted(removals[node], reverse=True):
            del statements[index]
            stats.sunk_removed += 1
        statements = inserts_entry[node] + statements + inserts_exit[node]
        stats.sunk_inserted += len(inserts_entry[node]) + len(inserts_exit[node])
        if list(work.statements(node)) != statements:
            work.set_statements(node, statements)
            changed = True
    return changed
