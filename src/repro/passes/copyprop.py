"""Copy propagation.

Substrate for the footnote 1 comparison: the paper notes that "even
interleaving code motion and copy propagation as suggested in [10] only
succeeds in removing the right hand side computations from the loop,
but the assignment … would remain in it."  To check that claim we need
an actual copy propagator to interleave with lazy code motion.

Classic formulation: a copy ``x := y`` is *available* at a point when it
was executed on every path from ``s`` and neither ``x`` nor ``y`` was
redefined since (forward, all-paths bit-vector over copy patterns).
Uses of ``x`` under an available copy are rewritten to ``y``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..ir.cfg import FlowGraph
from ..ir.exprs import Expr, Var, substitute
from ..ir.stmts import Assign, Branch, Out, Statement
from ..dataflow.bitvec import Universe
from ..dataflow.framework import FORWARD, Analysis, solve

__all__ = ["CopyPropagationReport", "copy_propagation"]


def _copies_in(graph: FlowGraph) -> Dict[str, Tuple[str, str]]:
    """All copy patterns ``x := y`` in the program, keyed by pattern."""
    copies: Dict[str, Tuple[str, str]] = {}
    for _node, _index, stmt in graph.assignments():
        if isinstance(stmt.rhs, Var):
            copies[stmt.pattern()] = (stmt.lhs, stmt.rhs.name)
    return dict(sorted(copies.items()))


class _AvailableCopies(Analysis):
    direction = FORWARD

    def __init__(self, graph, universe, copies):
        super().__init__(graph, universe)
        self._copies = copies

    def boundary(self) -> int:
        return 0  # nothing available before s

    def transfer(self, node: str, value: int) -> int:
        for stmt in self.graph.statements(node):
            value = _statement_transfer(self.universe, self._copies, stmt, value)
        return value


def _statement_transfer(
    universe: Universe,
    copies: Dict[str, Tuple[str, str]],
    stmt: Statement,
    value: int,
) -> int:
    modified = stmt.modified()
    if modified is not None:
        for pattern, (lhs, rhs) in copies.items():
            if modified in (lhs, rhs):
                value &= ~universe.bit(pattern)
    if isinstance(stmt, Assign) and isinstance(stmt.rhs, Var):
        # Rewrites may create copies unknown to this pass's universe
        # (e.g. ``x := h`` becoming ``x := h2``); they are picked up by
        # the next pass — only the kill side matters for them here.
        if stmt.pattern() in universe:
            value |= universe.bit(stmt.pattern())
    return value


@dataclass
class CopyPropagationReport:
    """What one propagation pass rewrote."""

    #: ``(block, index)`` statements whose uses were rewritten.
    rewritten: List[Tuple[str, int]]

    @property
    def changed(self) -> bool:
        return bool(self.rewritten)


def copy_propagation(graph: FlowGraph) -> CopyPropagationReport:
    """One global copy-propagation pass (mutates ``graph``)."""
    copies = _copies_in(graph)
    report = CopyPropagationReport(rewritten=[])
    if not copies:
        return report
    universe = Universe(copies)
    result = solve(_AvailableCopies(graph, universe, copies))

    for node in graph.nodes():
        value = result.entry[node]
        statements = list(graph.statements(node))
        changed = False
        for index, stmt in enumerate(statements):
            # Substitution map from the copies available *before* stmt.
            bindings: Dict[str, Expr] = {}
            for pattern in universe.members(value):
                lhs, rhs = copies[pattern]
                bindings[lhs] = Var(rhs)
            replaced = _rewrite_uses(stmt, bindings)
            if replaced is not None:
                statements[index] = replaced
                report.rewritten.append((node, index))
                changed = True
                stmt = replaced
            value = _statement_transfer(universe, copies, stmt, value)
        if changed:
            graph.set_statements(node, statements)
    return report


def _rewrite_uses(stmt: Statement, bindings: Dict[str, Expr]):
    """``stmt`` with uses substituted, or None when nothing applies.

    Chains (``x := y`` with ``y := z`` available) resolve one link per
    pass; callers iterate to a fixpoint.
    """
    if not bindings:
        return None
    if isinstance(stmt, Assign):
        new_rhs = substitute(stmt.rhs, bindings)
        if new_rhs != stmt.rhs:
            return Assign(stmt.lhs, new_rhs)
    elif isinstance(stmt, Out):
        new_expr = substitute(stmt.expr, bindings)
        if new_expr != stmt.expr:
            return Out(new_expr)
    elif isinstance(stmt, Branch):
        new_cond = substitute(stmt.cond, bindings)
        if new_cond != stmt.cond:
            return Branch(new_cond)
    return None
