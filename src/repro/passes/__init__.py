"""Auxiliary transformations and heuristic strategies.

* :mod:`repro.passes.copyprop` — copy propagation (footnote 1 substrate),
* :mod:`repro.passes.hoisting` — Dhamdhere-style assignment hoisting [9],
* :mod:`repro.passes.strategies` — the Section 7 heuristics (budgeted
  and region-localised PDE).
"""

from .copyprop import CopyPropagationReport, copy_propagation
from .hoisting import HoistingReport, assignment_hoisting, hoist_then_eliminate
from .strategies import budgeted_pde, loop_regions, region_closure, regional_pde
from .value_numbering import ValueNumberingReport, value_numbering

__all__ = [
    "CopyPropagationReport",
    "copy_propagation",
    "HoistingReport",
    "assignment_hoisting",
    "hoist_then_eliminate",
    "budgeted_pde",
    "loop_regions",
    "region_closure",
    "regional_pde",
    "ValueNumberingReport",
    "value_numbering",
]
