"""Dominator trees and dominance frontiers.

Substrate for the SSA-based dead code elimination of Cytron et al. [5],
which paper Section 5.2 cites as the efficient (``O(i·v)``) standard
method its own iterative elimination matches.  Built on the dominator
*sets* of :mod:`repro.ir.dominance`; programs here are small enough that
the simple constructions are the clear choice.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional

from ..ir.cfg import FlowGraph
from ..ir.dominance import dominators

__all__ = ["DominatorTree", "dominance_frontiers"]


class DominatorTree:
    """Immediate dominators and the tree they induce."""

    def __init__(self, graph: FlowGraph) -> None:
        self.graph = graph
        self._dom: Dict[str, FrozenSet[str]] = dominators(graph)
        self.idom: Dict[str, Optional[str]] = {}
        self.children: Dict[str, List[str]] = {node: [] for node in self._dom}
        for node, doms in self._dom.items():
            if node == graph.start:
                self.idom[node] = None
                continue
            strict = doms - {node}
            # The immediate dominator is the strict dominator that every
            # other strict dominator dominates (the closest one).
            immediate = None
            for candidate in strict:
                if all(other in self._dom[candidate] for other in strict):
                    immediate = candidate
                    break
            self.idom[node] = immediate
            if immediate is not None:
                self.children[immediate].append(node)
        for node in self.children:
            self.children[node].sort()

    def dominates(self, a: str, b: str) -> bool:
        return a in self._dom.get(b, frozenset())

    def strictly_dominates(self, a: str, b: str) -> bool:
        return a != b and self.dominates(a, b)

    def preorder(self) -> List[str]:
        """Dominator-tree preorder starting at the graph's start node."""
        order: List[str] = []
        stack = [self.graph.start]
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(reversed(self.children[node]))
        return order


def dominance_frontiers(graph: FlowGraph) -> Dict[str, FrozenSet[str]]:
    """``DF(n)`` for every reachable node, by the classic definition:
    ``m ∈ DF(n)`` iff ``n`` dominates a predecessor of ``m`` but does not
    strictly dominate ``m``."""
    tree = DominatorTree(graph)
    frontier: Dict[str, set] = {node: set() for node in tree.idom}
    for m in tree.idom:
        for p in graph.predecessors(m):
            if p not in tree.idom:
                continue
            runner: Optional[str] = p
            while runner is not None and not tree.strictly_dominates(runner, m):
                frontier[runner].add(m)
                runner = tree.idom[runner]
    return {node: frozenset(values) for node, values in frontier.items()}
