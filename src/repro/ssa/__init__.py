"""Static single assignment form — the substrate of the Cytron et al.
dead code eliminator that paper Section 5.2 uses as its efficiency
reference point."""

from .construct import Phi, SSAProgram, base_name, construct_ssa, versioned
from .dce import SSADeadCodeResult, ssa_dead_code_elimination
from .destruct import destruct
from .domtree import DominatorTree, dominance_frontiers

__all__ = [
    "Phi",
    "SSAProgram",
    "base_name",
    "construct_ssa",
    "versioned",
    "SSADeadCodeResult",
    "ssa_dead_code_elimination",
    "destruct",
    "DominatorTree",
    "dominance_frontiers",
]
