"""Out-of-SSA translation.

φ-functions are lowered to ordinary copies at the end of each
predecessor block: ``x%3 := φ(p: x%1, q: x%2)`` becomes ``x%3 := x%1``
at the end of ``p`` and ``x%3 := x%2`` at the end of ``q``.  On a
critical-edge-free graph this is safe (each copy affects exactly the
φ's edge); we additionally rely on the conventional SSA property that
φ-functions of one block read only versions live-out of the respective
predecessors.

SSA version names (``x%k``) remain in the program — the interpreter
does not care, and tests compare *observable behaviour* (``out``
sequences), which is version-agnostic.
"""

from __future__ import annotations

from typing import Dict, List

from ..ir.cfg import FlowGraph
from ..ir.exprs import Var
from ..ir.stmts import Assign, Branch, Statement
from .construct import Phi

__all__ = ["destruct"]


def destruct(graph: FlowGraph) -> FlowGraph:
    """Return a φ-free copy of ``graph`` (copies placed in predecessors)."""
    result = graph.copy()
    pending_copies: Dict[str, List[Assign]] = {}

    for node in result.nodes():
        statements = list(result.statements(node))
        remaining: List[Statement] = []
        for stmt in statements:
            if isinstance(stmt, Phi):
                for pred, name in stmt.args:
                    if name is None:
                        continue  # undefined along this edge: value unused
                    pending_copies.setdefault(pred, []).append(
                        Assign(stmt.lhs, Var(name))
                    )
            else:
                remaining.append(stmt)
        if len(remaining) != len(statements):
            result.set_statements(node, remaining)

    for node, copies in pending_copies.items():
        statements = list(result.statements(node))
        if statements and isinstance(statements[-1], Branch):
            statements = statements[:-1] + copies + [statements[-1]]
        else:
            statements = statements + copies
        result.set_statements(node, statements)
    return result
