"""SSA construction: φ-placement and renaming (Cytron et al. [5]).

Paper Section 5.2 compares its iterative dead code elimination with the
algorithm of [5], which works "on a sparse definition-use graph based on
the SSA form" with worst-case cost ``O(i·v)``.  To make that comparison
concrete we build SSA the standard way:

1. place φ-functions at the iterated dominance frontier of each
   variable's definition sites,
2. rename along the dominator tree with one version stack per variable.

SSA versions are rendered ``name%k`` — a spelling that cannot collide
with source identifiers (the surface syntax has no ``%`` in names).
φ-functions are a dedicated statement type living only inside SSA form;
:func:`repro.ssa.destruct.destruct` lowers them back to copies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..ir.cfg import FlowGraph
from ..ir.exprs import Expr, Var, substitute
from ..ir.stmts import Assign, Branch, Out, Skip, Statement
from .domtree import DominatorTree, dominance_frontiers

__all__ = ["Phi", "SSAProgram", "construct_ssa", "base_name", "versioned"]

_SEPARATOR = "%"


def versioned(name: str, version: int) -> str:
    return f"{name}{_SEPARATOR}{version}"


def base_name(name: str) -> str:
    """The source variable an SSA name versions (identity on plain names)."""
    return name.split(_SEPARATOR, 1)[0]


@dataclass(frozen=True)
class Phi:
    """``lhs := φ(arg per predecessor)`` at the entry of a join block.

    ``args`` pairs each predecessor block with the SSA name flowing in
    along that edge (None when the variable is undefined on the edge).
    """

    lhs: str
    args: Tuple[Tuple[str, Optional[str]], ...]

    def used(self) -> frozenset[str]:
        return frozenset(name for _pred, name in self.args if name is not None)

    def relevant_used(self) -> frozenset[str]:
        return frozenset()

    def assign_used(self) -> frozenset[str]:
        return self.used()

    def modified(self) -> Optional[str]:
        return self.lhs

    def is_relevant(self) -> bool:
        return False

    def __str__(self) -> str:
        rendered = ", ".join(
            f"{pred}: {name if name is not None else '⊥'}" for pred, name in self.args
        )
        return f"{self.lhs} := φ({rendered})"


@dataclass
class SSAProgram:
    """A flow graph in SSA form plus construction metadata."""

    graph: FlowGraph
    #: φ count per block (diagnostics / sparsity measurements).
    phi_count: int
    #: Final SSA version per source variable at the exit of ``e``.
    exit_versions: Dict[str, str]


def construct_ssa(graph: FlowGraph) -> SSAProgram:
    """Convert ``graph`` (critical-edge-free or not) to SSA form."""
    tree = DominatorTree(graph)
    frontiers = dominance_frontiers(graph)
    reachable = set(tree.idom)

    # 1. φ placement: iterated dominance frontier of each variable's defs.
    def_sites: Dict[str, set] = {}
    for node in reachable:
        for stmt in graph.statements(node):
            modified = stmt.modified()
            if modified is not None:
                def_sites.setdefault(modified, set()).add(node)

    phis: Dict[str, set] = {node: set() for node in reachable}  # node -> vars
    for variable, sites in def_sites.items():
        pending = list(sites)
        placed: set = set()
        on_list = set(sites)
        while pending:
            site = pending.pop()
            for frontier_node in frontiers.get(site, frozenset()):
                if frontier_node in placed:
                    continue
                placed.add(frontier_node)
                phis[frontier_node].add(variable)
                if frontier_node not in on_list:
                    on_list.add(frontier_node)
                    pending.append(frontier_node)

    # 2. Renaming along the dominator tree.
    ssa = graph.copy()
    counter: Dict[str, int] = {}
    stacks: Dict[str, List[str]] = {}

    def fresh(variable: str) -> str:
        counter[variable] = counter.get(variable, 0) + 1
        name = versioned(variable, counter[variable])
        stacks.setdefault(variable, []).append(name)
        return name

    def current(variable: str) -> Optional[str]:
        stack = stacks.get(variable)
        return stack[-1] if stack else None

    def rename_expr(expr: Expr) -> Expr:
        bindings = {}
        for variable in expr.variables():
            name = current(variable)
            if name is not None:
                bindings[variable] = Var(name)
        return substitute(expr, bindings)

    # φ argument slots to fill in after the walk: (block, var) -> per-pred.
    phi_args: Dict[Tuple[str, str], Dict[str, Optional[str]]] = {
        (node, variable): {} for node in reachable for variable in phis[node]
    }
    phi_names: Dict[Tuple[str, str], str] = {}

    exit_versions: Dict[str, str] = {}

    def enter(node: str) -> List[str]:
        pushed: List[str] = []
        for variable in sorted(phis[node]):
            name = fresh(variable)
            phi_names[(node, variable)] = name
            pushed.append(variable)
        renamed: List[Statement] = []
        for stmt in graph.statements(node):
            if isinstance(stmt, Assign):
                rhs = rename_expr(stmt.rhs)
                lhs = fresh(stmt.lhs)
                pushed.append(stmt.lhs)
                renamed.append(Assign(lhs, rhs))
            elif isinstance(stmt, Out):
                renamed.append(Out(rename_expr(stmt.expr)))
            elif isinstance(stmt, Branch):
                renamed.append(Branch(rename_expr(stmt.cond)))
            else:
                renamed.append(Skip())
        ssa.set_statements(node, renamed)

        for successor in graph.successors(node):
            for variable in phis.get(successor, ()):  # fill φ args
                # The base name is the implicit initial version (the
                # variable's value at program entry): paths carrying no
                # definition contribute it, never an undefined slot.
                phi_args[(successor, variable)][node] = current(variable) or variable
        if node == graph.end:
            # Versions visible at the exit of e (the virtual global uses).
            for variable in graph.globals:
                name = current(variable)
                if name is not None:
                    exit_versions[variable] = name
        return pushed

    # Iterative dominator-tree walk (deep programs would overflow the
    # Python recursion limit otherwise).
    stack: List[Tuple[str, bool]] = [(graph.start, False)]
    pushed_per_node: Dict[str, List[str]] = {}
    while stack:
        node, done = stack.pop()
        if done:
            for variable in reversed(pushed_per_node[node]):
                stacks[variable].pop()
            continue
        pushed_per_node[node] = enter(node)
        stack.append((node, True))
        for child in reversed(tree.children[node]):
            stack.append((child, False))

    # Materialise φ statements at block entries.
    phi_count = 0
    for node in reachable:
        if not phis[node]:
            continue
        materialised: List[Statement] = []
        for variable in sorted(phis[node]):
            args = tuple(
                (pred, phi_args[(node, variable)].get(pred))
                for pred in graph.predecessors(node)
            )
            materialised.append(Phi(phi_names[(node, variable)], args))
            phi_count += 1
        ssa.set_statements(node, materialised + list(ssa.statements(node)))

    return SSAProgram(graph=ssa, phi_count=phi_count, exit_versions=exit_versions)
