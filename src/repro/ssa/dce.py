"""SSA-based dead code elimination (Cytron et al. [5]).

The mark/sweep on SSA form that paper Section 5.2 credits with
``O(i·v)`` worst-case cost thanks to the *sparse* def-use structure:
in SSA every use is reached by exactly one definition, so the def-use
graph has at most one edge per use.

Marking starts from relevant statements (``out``, branch conditions)
and from the SSA versions of globals visible at ``e``; a definition
becomes live when a live statement uses its name; sweep removes
unmarked assignments and φ-functions.  With these optimistic
assumptions the algorithm removes exactly the *faint* assignments —
the same power as :func:`repro.baselines.fce_only.fce_only` and the
dense def-use marking, at sparse cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from ..ir.cfg import FlowGraph
from ..ir.stmts import Assign
from .construct import Phi, SSAProgram

__all__ = ["SSADeadCodeResult", "ssa_dead_code_elimination"]

Site = Tuple[str, int]


@dataclass
class SSADeadCodeResult:
    """Outcome of one SSA mark/sweep."""

    graph: FlowGraph
    removed: List[Site]
    #: Def-use edges traversed — the sparsity measure Section 5.2 is
    #: about (compare with the dense graph's ``edge_count``).
    edges_traversed: int


def ssa_dead_code_elimination(program: SSAProgram) -> SSADeadCodeResult:
    """Run the mark/sweep on ``program`` (mutating its graph)."""
    graph = program.graph

    # In SSA each name has exactly one defining site.
    def_site: Dict[str, Site] = {}
    for node in graph.nodes():
        for index, stmt in enumerate(graph.statements(node)):
            modified = stmt.modified()
            if modified is not None:
                def_site[modified] = (node, index)

    live: Set[Site] = set()
    worklist: List[Site] = []
    edges = 0

    def mark_name(name: str) -> None:
        nonlocal edges
        site = def_site.get(name)
        if site is None:
            return
        edges += 1
        if site not in live:
            live.add(site)
            worklist.append(site)

    for node in graph.nodes():
        for index, stmt in enumerate(graph.statements(node)):
            if stmt.is_relevant():
                for name in stmt.used():
                    mark_name(name)
    for name in program.exit_versions.values():
        mark_name(name)

    while worklist:
        node, index = worklist.pop()
        stmt = graph.statements(node)[index]
        for name in stmt.used():
            mark_name(name)

    removed: List[Site] = []
    for node in graph.nodes():
        statements = list(graph.statements(node))
        kept = []
        for index, stmt in enumerate(statements):
            is_def = isinstance(stmt, (Assign, Phi))
            if is_def and (node, index) not in live:
                removed.append((node, index))
            else:
                kept.append(stmt)
        if len(kept) != len(statements):
            graph.set_statements(node, kept)
    return SSADeadCodeResult(graph=graph, removed=removed, edges_traversed=edges)
