"""Reference interpreter and path utilities (the semantics oracle)."""

from .interpreter import DecisionSequence, InterpreterError, Run, execute
from .paths import count_pattern_on_path, enumerate_paths

__all__ = [
    "DecisionSequence",
    "InterpreterError",
    "Run",
    "execute",
    "count_pattern_on_path",
    "enumerate_paths",
]
