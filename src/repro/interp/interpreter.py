"""Reference interpreter for flow graphs — the semantics oracle.

Paper Section 2 treats branching as **nondeterministic**: the meaning of
a program is, per path, the sequence of values produced by relevant
statements (``out``).  The interpreter therefore runs a program under an
explicit *decision oracle* that resolves branches:

* a :class:`DecisionSequence` — a pre-recorded list of successor
  indices, the same sequence replayable against the original and the
  transformed program (their branching structures coincide, so the
  decision sequences transfer directly); blocks carrying a real
  :class:`~repro.ir.stmts.Branch` condition consume their condition
  instead of the oracle, unless ``force_oracle`` is set;
* or nothing, for programs whose branches are all conditional.

The run records everything the reproduction needs to compare programs:

* the ``out`` value sequence (observable semantics),
* the number of executed assignments, total and per pattern (the
  dynamic-cost measure behind Definition 3.6's "at least as fast"),
* whether a run-time error occurred (footnote 3: eliminations may make
  errors disappear — never appear).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.cfg import FlowGraph
from ..ir.exprs import EvalError
from ..ir.stmts import Assign, Branch, Out, Skip

__all__ = ["DecisionSequence", "Run", "execute", "InterpreterError"]


class InterpreterError(Exception):
    """Raised on non-semantic failures (exhausted oracle, step limit)."""


class DecisionSequence:
    """A replayable source of branch decisions.

    Each decision is the *index* of the successor to take at a block with
    more than one successor.  Out-of-range indices are reduced modulo the
    successor count, so one random integer sequence drives any program
    shape — handy for hypothesis-generated oracles.
    """

    def __init__(self, decisions: Sequence[int]) -> None:
        self._decisions = list(decisions)
        self._cursor = 0

    def next_decision(self, fanout: int) -> int:
        if self._cursor >= len(self._decisions):
            raise InterpreterError("decision sequence exhausted")
        value = self._decisions[self._cursor] % fanout
        self._cursor += 1
        return value

    def reset(self) -> "DecisionSequence":
        self._cursor = 0
        return self


@dataclass
class Run:
    """The observable outcome of one execution."""

    #: Values produced by ``out`` statements, in order.
    outputs: List[int] = field(default_factory=list)
    #: Visited blocks, in order (including ``s`` and ``e``).
    trace: List[str] = field(default_factory=list)
    #: Executed assignment count per pattern.
    executed: Dict[str, int] = field(default_factory=dict)
    #: Final variable environment.
    env: Dict[str, int] = field(default_factory=dict)
    #: The run-time error that aborted the run, if any.
    error: Optional[str] = None

    @property
    def total_assignments(self) -> int:
        return sum(self.executed.values())

    def observable(self) -> Tuple[Tuple[int, ...], Optional[str]]:
        """What Definition 3.5 semantics preserves: outputs (+ error)."""
        return (tuple(self.outputs), self.error)


def execute(
    graph: FlowGraph,
    env: Optional[Dict[str, int]] = None,
    decisions: Optional[DecisionSequence] = None,
    max_steps: int = 10_000,
    force_oracle: bool = False,
) -> Run:
    """Execute ``graph`` from ``s`` until ``e`` and return the :class:`Run`.

    ``env`` supplies initial variable values (default: every variable
    referenced by the program starts at 0, so uninitialised reads are
    deterministic).  ``max_steps`` bounds the number of executed
    statements to keep nondeterministic loops finite.
    """
    run = Run()
    run.env = dict(env) if env else {}
    for name in sorted(graph.variables()):
        run.env.setdefault(name, 0)

    node = graph.start
    steps = 0
    while True:
        run.trace.append(node)
        taken: Optional[int] = None
        for stmt in graph.statements(node):
            steps += 1
            if steps > max_steps:
                raise InterpreterError(f"exceeded {max_steps} executed statements")
            try:
                if isinstance(stmt, Assign):
                    run.env[stmt.lhs] = stmt.rhs.evaluate(run.env)
                    pattern = stmt.pattern()
                    run.executed[pattern] = run.executed.get(pattern, 0) + 1
                elif isinstance(stmt, Out):
                    run.outputs.append(stmt.expr.evaluate(run.env))
                elif isinstance(stmt, Branch) and not force_oracle:
                    taken = 0 if stmt.cond.evaluate(run.env) else 1
                elif isinstance(stmt, Skip) or isinstance(stmt, Branch):
                    pass
            except EvalError as error:
                run.error = str(error)
                return run

        if node == graph.end:
            return run
        successors = graph.successors(node)
        if not successors:
            raise InterpreterError(f"stuck at block {node!r} (no successors)")
        if len(successors) == 1:
            node = successors[0]
        elif taken is not None:
            node = successors[taken]
        else:
            if decisions is None:
                raise InterpreterError(
                    f"nondeterministic branch at {node!r} without a decision sequence"
                )
            node = successors[decisions.next_decision(len(successors))]
