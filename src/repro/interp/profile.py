"""Monte-Carlo execution profiles.

The paper proves a *per-path* guarantee (no execution gets slower) but
reports no aggregate numbers — it has no machine evaluation.  This
module adds the measurement layer a modern evaluation would include:
run a program under many random branch-decision sequences and estimate

* the **expected executed-assignment count** (the dynamic cost measure
  behind Definition 3.6's "at least as fast"),
* per-block execution frequencies (used to pick "hot areas" for the
  Section 7 regional strategy).

Profiles of an original/transformed pair are comparable when collected
with the same ``seed``: the replayed decision sequences coincide, so
the cost difference is the true per-execution saving averaged over the
sampled paths.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..ir.cfg import FlowGraph
from .interpreter import DecisionSequence, InterpreterError, execute

__all__ = ["Profile", "collect_profile", "expected_cost", "hottest_blocks"]


@dataclass
class Profile:
    """Aggregate statistics over many randomised executions."""

    runs: int = 0
    #: Executions skipped (step budget exhausted or run-time error).
    skipped: int = 0
    total_assignments: int = 0
    #: Executed-assignment count per pattern, summed over runs.
    per_pattern: Dict[str, int] = field(default_factory=dict)
    #: Visit counts per block, summed over runs.
    block_visits: Dict[str, int] = field(default_factory=dict)

    @property
    def mean_assignments(self) -> float:
        """Expected executed assignments per (completed) run."""
        if self.runs == 0:
            return 0.0
        return self.total_assignments / self.runs

    def frequency(self, block: str) -> float:
        """Mean visits of ``block`` per completed run."""
        if self.runs == 0:
            return 0.0
        return self.block_visits.get(block, 0) / self.runs


def collect_profile(
    graph: FlowGraph,
    trials: int = 200,
    seed: int = 0,
    max_steps: int = 2000,
    decisions_len: int = 300,
    env_range: int = 4,
) -> Profile:
    """Profile ``graph`` under ``trials`` random decision sequences.

    Each trial draws a decision sequence and an initial environment from
    a per-trial RNG derived from ``seed`` — two graphs with the same
    branching structure profiled with the same ``seed`` see identical
    trials.
    """
    profile = Profile()
    for trial in range(trials):
        rng = random.Random(seed * 1_000_003 + trial)
        decisions = [rng.randint(0, 7) for _ in range(decisions_len)]
        env = {
            name: rng.randint(-env_range, env_range)
            for name in sorted(graph.variables())
        }
        try:
            run = execute(
                graph, env, DecisionSequence(decisions), max_steps=max_steps
            )
        except InterpreterError:
            profile.skipped += 1
            continue
        if run.error is not None:
            profile.skipped += 1
            continue
        profile.runs += 1
        profile.total_assignments += run.total_assignments
        for pattern, count in run.executed.items():
            profile.per_pattern[pattern] = (
                profile.per_pattern.get(pattern, 0) + count
            )
        for block in run.trace:
            profile.block_visits[block] = profile.block_visits.get(block, 0) + 1
    return profile


def expected_cost(
    graph: FlowGraph, trials: int = 200, seed: int = 0, **kwargs
) -> float:
    """Shorthand: the mean executed-assignment count of a profile."""
    return collect_profile(graph, trials=trials, seed=seed, **kwargs).mean_assignments


def hottest_blocks(
    graph: FlowGraph, top: int = 3, trials: int = 100, seed: int = 0
) -> List[Tuple[str, float]]:
    """The ``top`` most frequently executed blocks with their mean visit
    counts — profile input for the Section 7 'hot areas' strategy."""
    profile = collect_profile(graph, trials=trials, seed=seed)
    ranked = sorted(
        (
            (node, profile.frequency(node))
            for node in graph.nodes()
            if node not in (graph.start, graph.end)
        ),
        key=lambda pair: (-pair[1], pair[0]),
    )
    return ranked[:top]
