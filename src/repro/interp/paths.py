"""Finite path enumeration in flow graphs.

The paper's program semantics and its optimality criterion
(Definition 3.6) are *path-based*: programs are compared by the number
of assignment-pattern occurrences along each path from ``s`` to ``e``.
On finite instances we decide the criterion by enumerating all paths in
which no edge repeats more than ``max_edge_repeats`` times — enough to
distinguish loop bodies (entered 0, 1, 2 times) on every example in the
paper and in the test suite.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from ..ir.cfg import FlowGraph

__all__ = ["enumerate_paths", "count_pattern_on_path"]


def enumerate_paths(
    graph: FlowGraph, max_edge_repeats: int = 2, limit: int = 100_000
) -> Iterator[Tuple[str, ...]]:
    """Yield all ``s → e`` paths using each edge at most
    ``max_edge_repeats`` times.

    Paths are node sequences ``(s, …, e)``.  Raises ``RuntimeError``
    after ``limit`` paths — a guard against accidentally enumerating an
    exponential family in tests.
    """
    produced = 0
    edge_uses: Dict[Tuple[str, str], int] = {}
    path: List[str] = [graph.start]

    def walk() -> Iterator[Tuple[str, ...]]:
        nonlocal produced
        node = path[-1]
        if node == graph.end:
            produced += 1
            if produced > limit:
                raise RuntimeError(f"more than {limit} paths enumerated")
            yield tuple(path)
            return
        for successor in graph.successors(node):
            edge = (node, successor)
            if edge_uses.get(edge, 0) >= max_edge_repeats:
                continue
            edge_uses[edge] = edge_uses.get(edge, 0) + 1
            path.append(successor)
            yield from walk()
            path.pop()
            edge_uses[edge] -= 1

    return walk()


def count_pattern_on_path(graph: FlowGraph, path: Tuple[str, ...], pattern: str) -> int:
    """The paper's ``α#(p_G)``: occurrences of ``pattern`` on ``path``."""
    from ..ir.stmts import Assign

    count = 0
    for node in path:
        for stmt in graph.statements(node):
            if isinstance(stmt, Assign) and stmt.pattern() == pattern:
                count += 1
    return count
