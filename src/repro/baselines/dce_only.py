"""Baseline: classical (total) dead code elimination, no sinking.

This is what the paper's "usual approaches" achieve (Section 1): an
assignment is removed only when it is *totally* dead — dead on **all**
paths.  Partially dead assignments such as the one in Figure 1 are out
of scope.  Iterated to a fixpoint so that elimination-elimination chains
(Figure 12) are captured, which the classical technique does handle.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.cfg import FlowGraph
from ..ir.splitting import split_critical_edges
from ..core.eliminate import dead_code_elimination

__all__ = ["BaselineResult", "dce_only"]


@dataclass
class BaselineResult:
    """Outcome of a baseline transformation (shared across baselines)."""

    original: FlowGraph
    graph: FlowGraph
    passes: int
    eliminated: int
    name: str = ""


def dce_only(graph: FlowGraph, split_edges: bool = True) -> BaselineResult:
    """Iterated total dead code elimination.

    ``split_edges`` keeps the branching structure aligned with the
    :func:`repro.core.driver.pde` result so path-wise comparisons
    (Definition 3.6) apply directly.
    """
    original = split_critical_edges(graph) if split_edges else graph.copy()
    work = original.copy()
    passes = 0
    eliminated = 0
    while True:
        report = dead_code_elimination(work)
        passes += 1
        eliminated += len(report)
        if not report.changed:
            break
    return BaselineResult(
        original=original, graph=work, passes=passes, eliminated=eliminated, name="dce-only"
    )
