"""Baseline: SSA-based dead code elimination, end to end.

Pipeline: split critical edges → construct SSA → Cytron-style
mark/sweep → destruct.  Power: exactly the faint assignments (like the
dense def-use marking), at the sparse ``O(i·v)`` cost paper Section 5.2
quotes for [5].  Like every elimination-only technique it cannot touch
*partially* dead code.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.cfg import FlowGraph
from ..ir.splitting import split_critical_edges
from ..ssa.construct import construct_ssa
from ..ssa.dce import ssa_dead_code_elimination
from ..ssa.destruct import destruct
from .dce_only import BaselineResult

__all__ = ["ssa_dce", "SSABaselineResult"]


@dataclass
class SSABaselineResult(BaselineResult):
    """Adds the sparse def-use traversal count to the baseline result."""

    edges_traversed: int = 0
    phi_count: int = 0


def ssa_dce(graph: FlowGraph, split_edges: bool = True) -> SSABaselineResult:
    """Run the SSA DCE pipeline on ``graph``."""
    original = split_critical_edges(graph) if split_edges else graph.copy()
    program = construct_ssa(original.copy())
    marked = ssa_dead_code_elimination(program)
    lowered = destruct(marked.graph)
    return SSABaselineResult(
        original=original,
        graph=lowered,
        passes=1,
        eliminated=len(marked.removed),
        name="ssa-dce",
        edges_traversed=marked.edges_traversed,
        phi_count=program.phi_count,
    )
