"""Comparison algorithms from the paper's related-work discussion."""

from .dce_only import BaselineResult, dce_only
from .defuse import DefUseGraph, build_def_use_graph, defuse_elimination
from .fce_only import fce_only
from .naive_sinking import naive_sinking
from .single_pass import single_pass_pde
from .ssa_dce import SSABaselineResult, ssa_dce

__all__ = [
    "BaselineResult",
    "dce_only",
    "DefUseGraph",
    "build_def_use_graph",
    "defuse_elimination",
    "fce_only",
    "naive_sinking",
    "single_pass_pde",
    "SSABaselineResult",
    "ssa_dce",
]
