"""Baseline: faint code elimination without sinking ([16, 18]).

Strictly more powerful than total dead code elimination (it removes the
faint-but-not-dead loop of Figure 9, and the mutually-useless pair of
Figure 12 in a single pass) but still blind to *partially* dead code —
it never moves a statement.
"""

from __future__ import annotations

from ..ir.cfg import FlowGraph
from ..ir.splitting import split_critical_edges
from ..core.eliminate import faint_code_elimination
from .dce_only import BaselineResult

__all__ = ["fce_only"]


def fce_only(graph: FlowGraph, split_edges: bool = True) -> BaselineResult:
    """Iterated faint code elimination (one pass normally suffices)."""
    original = split_critical_edges(graph) if split_edges else graph.copy()
    work = original.copy()
    passes = 0
    eliminated = 0
    while True:
        report = faint_code_elimination(work)
        passes += 1
        eliminated += len(report)
        if not report.changed:
            break
    return BaselineResult(
        original=original, graph=work, passes=passes, eliminated=eliminated, name="fce-only"
    )
