"""Baseline: use-site instruction sinking in the style of Briggs/Cooper [4].

The paper's related-work section notes that Briggs' and Cooper's
instruction sinking "can significantly impair certain program
executions, since instructions can be moved into loops in a way which
cannot be 'repaired' by a subsequent partial redundancy elimination"
— in Figure 6 their strategy would sink the instruction of node
``S4,5`` into the loop to node 7, and LCM cannot hoist it back for
safety reasons.

This stand-in reproduces exactly that behaviour while staying
semantics-preserving.  It greedily moves an assignment ``x := t`` to
its unique use site when

* ``x`` is not global and this is the only definition of ``x``,
* ``x`` is used in exactly one statement (at block ``U``),
* nothing after the assignment in its own block, in ``U`` before the
  use, or in any block on a path between them blocks the move (no use
  or redefinition of ``x``, no modification of ``t``'s operands).

Crucially there is **no loop profitability check** — a use inside a
loop pulls the assignment into the loop, the impairment ``pde`` is
engineered to avoid (its delayability product over predecessors stops
at loop headers).  The only loop-related guard is a *correctness* one:
when the use block lies on a cycle, its tail must not clobber the moved
value's operands, or per-iteration re-execution would change the value
(found by the fuzzing soak; see EXPERIMENTS.md's war stories).
"""

from __future__ import annotations

from typing import List, Set, Tuple

from ..ir.cfg import FlowGraph
from ..ir.dominance import dominators
from ..ir.splitting import split_critical_edges
from ..ir.stmts import Assign, Statement
from .dce_only import BaselineResult

__all__ = ["naive_sinking"]

Site = Tuple[str, int]


def _uses_sites(graph: FlowGraph, var: str) -> List[Site]:
    sites: List[Site] = []
    for node in graph.nodes():
        for index, stmt in enumerate(graph.statements(node)):
            if var in stmt.used():
                sites.append((node, index))
    return sites


def _def_sites(graph: FlowGraph, var: str) -> List[Site]:
    return [
        (node, index)
        for node, index, stmt in graph.assignments()
        if stmt.lhs == var
    ]


def _blocks_move(stmt: Statement, assign: Assign) -> bool:
    modified = stmt.modified()
    if modified is not None and (
        modified == assign.lhs or modified in assign.rhs.variables()
    ):
        return True
    return assign.lhs in stmt.used()


def _clobbers(stmt: Statement, assign: Assign) -> bool:
    """Does ``stmt`` overwrite the moved value or one of its operands?

    Unlike :func:`_blocks_move` this ignores mere *uses* of the lhs —
    the use site itself reads it, which is the point of the move."""
    modified = stmt.modified()
    return modified is not None and (
        modified == assign.lhs or modified in assign.rhs.variables()
    )


def _self_reachable(graph: FlowGraph, node: str) -> bool:
    """Can ``node`` reach itself (does it lie on a cycle)?"""
    stack = list(graph.successors(node))
    seen: Set[str] = set()
    while stack:
        current = stack.pop()
        if current == node:
            return True
        if current in seen:
            continue
        seen.add(current)
        stack.extend(graph.successors(current))
    return False


def _region_between(graph: FlowGraph, source: str, target: str) -> Set[str]:
    """Blocks strictly between ``source`` and ``target``: reachable from
    ``source`` without passing through ``target``, and reaching
    ``target``."""
    forward: Set[str] = set()
    stack = [s for s in graph.successors(source)]
    while stack:
        node = stack.pop()
        if node in forward or node == target:
            continue
        forward.add(node)
        stack.extend(graph.successors(node))
    backward: Set[str] = set()
    stack = [p for p in graph.predecessors(target)]
    while stack:
        node = stack.pop()
        if node in backward or node == source:
            continue
        backward.add(node)
        stack.extend(graph.predecessors(node))
    return forward & backward


def _try_move(graph: FlowGraph) -> bool:
    """Perform the first eligible move; return True when one was made."""
    dom = dominators(graph)
    for node, index, stmt in list(graph.assignments()):
        if stmt.lhs in graph.globals:
            continue
        if len(_def_sites(graph, stmt.lhs)) != 1:
            continue
        uses = _uses_sites(graph, stmt.lhs)
        if len(uses) != 1:
            continue
        (use_block, use_index) = uses[0]
        if use_block == node:
            continue  # local move only reorders within a block; skip
        if node not in dom.get(use_block, frozenset()):
            continue  # the definition must dominate the use

        statements = graph.statements(node)
        if any(_blocks_move(other, stmt) for other in statements[index + 1 :]):
            continue
        target_statements = graph.statements(use_block)
        if any(_blocks_move(other, stmt) for other in target_statements[:use_index]):
            continue
        # When the use block lies on a cycle, the moved definition
        # re-executes every iteration: the use statement and the block's
        # tail then sit *between* consecutive executions, so they must
        # not overwrite the value or its operands (a loop that merely
        # reads it — Figure 6's y := y + x — is the impairment this
        # baseline intentionally permits; one that clobbers the operands
        # would be a miscompile).
        if _self_reachable(graph, use_block) and any(
            _clobbers(other, stmt) for other in target_statements[use_index:]
        ):
            continue
        region = _region_between(graph, node, use_block)
        if node in region:
            continue  # the definition's own block lies on a cycle to the use
        blocked = False
        for middle in region:
            if any(_blocks_move(other, stmt) for other in graph.statements(middle)):
                blocked = True
                break
        if blocked:
            continue
        # Dominance + single definition + clean region: the moved
        # computation yields the same value at the use.  It may still
        # *duplicate work* by landing inside a loop — that is the point
        # of this baseline.
        remaining = list(statements)
        del remaining[index]
        graph.set_statements(node, remaining)
        updated = list(graph.statements(use_block))
        updated.insert(use_index, stmt)
        graph.set_statements(use_block, updated)
        return True
    return False


def naive_sinking(graph: FlowGraph, split_edges: bool = True, max_moves: int = 1000) -> BaselineResult:
    """Greedy use-site sinking (no loop protection), then nothing else."""
    original = split_critical_edges(graph) if split_edges else graph.copy()
    work = original.copy()
    moves = 0
    while moves < max_moves and _try_move(work):
        moves += 1
    return BaselineResult(
        original=original, graph=work, passes=moves, eliminated=0, name="naive-sinking"
    )
