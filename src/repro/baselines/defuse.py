"""Baseline: def-use-graph dead code elimination (paper Section 5.2).

"Standard methods to dead code elimination are usually based on
definition-use graphs [2, 21] … dead assignments can be identified
indirectly by means of a simple marking algorithm working on the
definition-use graph.  If this algorithm uses optimistic assumptions
every faint assignment is detected in time proportional to the size of
the graph.  Unfortunately, definition-use graphs are usually quite
large, i.e. of order O(i²·v) in the worst case."

This module builds the graph explicitly (so its size is measurable —
the Section 6 comparison) and runs the optimistic marking:

* uses in *relevant* statements (``out``, branch conditions, the virtual
  global uses at ``e``) are live roots;
* a definition is live when it reaches a live use;
* the rhs uses of a live assignment become live in turn.

Unmarked assignments are removed.  With optimistic assumptions this
removes exactly the faint assignments, so the result agrees with
:func:`repro.baselines.fce_only.fce_only` (a test asserts it); like that
baseline it performs no sinking, so partially dead code survives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from ..ir.cfg import FlowGraph
from ..ir.splitting import split_critical_edges
from ..ir.stmts import Assign
from ..dataflow.reaching import Definition, analyze_reaching
from .dce_only import BaselineResult

__all__ = ["DefUseGraph", "build_def_use_graph", "defuse_elimination"]

Site = Tuple[str, int]  # (block, statement index)


@dataclass
class DefUseGraph:
    """An explicit definition-use graph with size accounting."""

    #: def site -> use sites its value may reach.
    uses_of_def: Dict[Site, List[Site]] = field(default_factory=dict)
    #: use site -> def sites that may reach it, per used variable.
    defs_of_use: Dict[Site, List[Site]] = field(default_factory=dict)
    #: Root use sites (relevant statements).
    roots: List[Site] = field(default_factory=list)
    #: Defs whose value may reach the end node's exit while global.
    global_defs: List[Site] = field(default_factory=list)

    @property
    def edge_count(self) -> int:
        """Size measure for the O(i²·v) discussion."""
        return sum(len(uses) for uses in self.uses_of_def.values())


def build_def_use_graph(graph: FlowGraph) -> DefUseGraph:
    """Construct the def-use graph via reaching definitions."""
    reaching = analyze_reaching(graph)
    result = DefUseGraph()
    for node, index, stmt in graph.assignments():
        result.uses_of_def.setdefault((node, index), [])

    for node in graph.nodes():
        for index, stmt in enumerate(graph.statements(node)):
            use_site = (node, index)
            used = stmt.used()
            if not used:
                continue
            reaching_defs: List[Site] = []
            for var in sorted(used):
                for definition in reaching.definitions_reaching(node, index, var):
                    def_site = (definition.block, definition.index)
                    reaching_defs.append(def_site)
                    result.uses_of_def.setdefault(def_site, []).append(use_site)
            result.defs_of_use[use_site] = reaching_defs
            if stmt.is_relevant():
                result.roots.append(use_site)

    # Globals are virtually used at the exit of e (footnote 2).
    if graph.globals:
        exit_defs = _definitions_at_exit(graph, reaching)
        for definition in exit_defs:
            if definition.var in graph.globals:
                result.global_defs.append((definition.block, definition.index))
    return result


def _definitions_at_exit(graph: FlowGraph, reaching) -> List[Definition]:
    """Definitions reaching the exit of the end node."""
    return list(reaching.definitions_in(reaching.exit(graph.end)))


def defuse_elimination(graph: FlowGraph, split_edges: bool = True) -> BaselineResult:
    """Optimistic def-use marking DCE (equivalent in power to ``fce``)."""
    original = split_critical_edges(graph) if split_edges else graph.copy()
    work = original.copy()
    passes = 0
    eliminated = 0
    while True:
        dug = build_def_use_graph(work)
        live: Set[Site] = set()
        worklist: List[Site] = []

        def mark(site: Site) -> None:
            if site not in live:
                live.add(site)
                worklist.append(site)

        for root in dug.roots:
            for def_site in dug.defs_of_use.get(root, []):
                mark(def_site)
        for def_site in dug.global_defs:
            mark(def_site)
        while worklist:
            def_site = worklist.pop()
            # The marked assignment's own rhs uses become live.
            for upstream in dug.defs_of_use.get(def_site, []):
                mark(upstream)

        removed = 0
        for node in work.nodes():
            statements = list(work.statements(node))
            kept = [
                stmt
                for index, stmt in enumerate(statements)
                if not (isinstance(stmt, Assign) and (node, index) not in live)
            ]
            if len(kept) != len(statements):
                work.set_statements(node, kept)
                removed += len(statements) - len(kept)
        passes += 1
        eliminated += removed
        if removed == 0:
            break
    return BaselineResult(
        original=original, graph=work, passes=passes, eliminated=eliminated, name="defuse"
    )
