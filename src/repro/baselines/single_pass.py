"""Baseline: one round of sinking + elimination — no second-order effects.

The paper attributes exactly this weakness to Feigen et al.'s revival
transformation [13]: a single application of assignment movement and
elimination which cannot exploit the mutual enabling of Section 4's
sinking-sinking, elimination-sinking and elimination-elimination
effects.  (The revival transformation is additionally restricted to
moving one occurrence to one later point; our stand-in is *stronger*
than [13] — it performs full m-to-n sinking — so every win of ``pde``
over this baseline is also a win over the weaker original.)

On Figure 10/11/12 programs this baseline visibly leaves work on the
table that exhaustive ``pde`` finishes.
"""

from __future__ import annotations

from ..ir.cfg import FlowGraph
from ..ir.splitting import split_critical_edges
from ..core.eliminate import dead_code_elimination
from ..core.sink import assignment_sinking
from .dce_only import BaselineResult

__all__ = ["single_pass_pde"]


def single_pass_pde(graph: FlowGraph, split_edges: bool = True) -> BaselineResult:
    """One ``ask`` pass followed by one ``dce`` pass."""
    original = split_critical_edges(graph) if split_edges else graph.copy()
    work = original.copy()
    assignment_sinking(work)
    report = dead_code_elimination(work)
    return BaselineResult(
        original=original,
        graph=work,
        passes=2,
        eliminated=len(report),
        name="single-pass",
    )
