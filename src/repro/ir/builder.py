"""Programmatic flow-graph construction.

The paper's figures are drawn as numbered basic blocks with explicit
edges; :class:`GraphBuilder` lets the figures corpus (and tests) write
them down almost verbatim::

    g = GraphBuilder()
    g.block(1, "y := a + b")
    g.block(2)
    g.block(3, "y := 4")
    g.block(4, "x := y + 3")
    g.block(5, "out(x); out(y)")
    g.chain("s", 1)
    g.edges((1, 2), (1, 3), (2, 4), (3, 4), (4, 5))
    g.chain(5, "e")
    graph = g.build()
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple, Union

from .cfg import END, START, FlowGraph
from .parser import parse_statement
from .stmts import Statement, is_statement

__all__ = ["GraphBuilder", "block_statements"]

BlockName = Union[str, int]
StatementsSpec = Union[str, Statement, Sequence[Statement], None]


def block_statements(spec: StatementsSpec) -> List[Statement]:
    """Normalise a statements specification.

    Accepts a ``;``-separated source string, a single statement, a
    sequence of statements, or None (empty block).
    """
    if spec is None:
        return []
    if isinstance(spec, str):
        return [
            parse_statement(part)
            for part in (chunk.strip() for chunk in spec.split(";"))
            if part
        ]
    if is_statement(spec):
        return [spec]  # type: ignore[list-item]
    return list(spec)  # type: ignore[arg-type]


class GraphBuilder:
    """Incremental construction of a :class:`FlowGraph`."""

    def __init__(
        self,
        start: str = START,
        end: str = END,
        globals_: Iterable[str] = (),
    ) -> None:
        self._graph = FlowGraph(start, end, globals_)
        self._built = False

    @staticmethod
    def _name(name: BlockName) -> str:
        return str(name)

    def block(self, name: BlockName, statements: StatementsSpec = None) -> "GraphBuilder":
        """Declare block ``name`` with the given statements."""
        label = self._name(name)
        if not self._graph.has_block(label):
            self._graph.add_block(label)
        self._graph.set_statements(label, block_statements(statements))
        return self

    def edge(self, src: BlockName, dst: BlockName) -> "GraphBuilder":
        """Add the edge ``src -> dst``; blocks are created on demand."""
        for name in (src, dst):
            label = self._name(name)
            if not self._graph.has_block(label):
                self._graph.add_block(label)
        self._graph.add_edge(self._name(src), self._name(dst))
        return self

    def edges(self, *pairs: Tuple[BlockName, BlockName]) -> "GraphBuilder":
        for src, dst in pairs:
            self.edge(src, dst)
        return self

    def chain(self, *names: BlockName) -> "GraphBuilder":
        """Add edges linking consecutive ``names``."""
        for src, dst in zip(names, names[1:]):
            self.edge(src, dst)
        return self

    def build(self) -> FlowGraph:
        """Return the constructed graph (builder becomes unusable)."""
        if self._built:
            raise RuntimeError("GraphBuilder.build() called twice")
        self._built = True
        return self._graph
