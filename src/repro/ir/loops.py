"""Natural loop detection.

Used by the Section 7 'hot areas' strategy to pick regions
automatically, and by tests to state loop-related properties ("nothing
sinks into loops") structurally instead of path-wise.

A **back edge** is an edge ``(u, h)`` whose target dominates its source;
the **natural loop** of a back edge is ``h`` plus every node that can
reach ``u`` without passing through ``h``.  Natural loops exist only for
the reducible parts of a graph — irreducible cycles (Figure 5's
``3 ⇄ 4``) have no back edge by this definition and are reported by
:func:`irreducible_cycle_nodes` instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Set, Tuple

from .cfg import FlowGraph
from .dominance import dominators

__all__ = ["NaturalLoop", "back_edges", "natural_loops", "irreducible_cycle_nodes"]


@dataclass(frozen=True)
class NaturalLoop:
    """One natural loop: its header and full body (header included)."""

    header: str
    body: FrozenSet[str]
    back_edge: Tuple[str, str]

    def __contains__(self, node: object) -> bool:
        return node in self.body

    def __len__(self) -> int:
        return len(self.body)


def back_edges(graph: FlowGraph) -> List[Tuple[str, str]]:
    """All edges whose target dominates their source."""
    dom = dominators(graph)
    return [
        (u, v)
        for u, v in graph.edges()
        if v in dom.get(u, frozenset())
    ]


def natural_loops(graph: FlowGraph) -> List[NaturalLoop]:
    """The natural loop of every back edge, deterministic order."""
    loops: List[NaturalLoop] = []
    for u, header in sorted(back_edges(graph)):
        body: Set[str] = {header, u}
        # Never explore past the header (a self-loop's body is just it).
        stack = [u] if u != header else []
        while stack:
            node = stack.pop()
            for pred in graph.predecessors(node):
                if pred not in body:
                    body.add(pred)
                    stack.append(pred)
        loops.append(NaturalLoop(header=header, body=frozenset(body), back_edge=(u, header)))
    return loops


def irreducible_cycle_nodes(graph: FlowGraph) -> FrozenSet[str]:
    """Nodes on cycles not covered by any natural loop.

    Every node of every cycle either belongs to a natural loop body or
    participates in an irreducible region; the difference is exactly the
    set this function reports (empty for reducible graphs).
    """
    covered: Set[str] = set()
    for loop in natural_loops(graph):
        covered |= loop.body

    on_cycle: Set[str] = set()
    # A node is on a cycle iff it can reach itself.
    for node in graph.nodes():
        stack = list(graph.successors(node))
        seen: Set[str] = set()
        while stack:
            current = stack.pop()
            if current == node:
                on_cycle.add(node)
                break
            if current in seen:
                continue
            seen.add(current)
            stack.extend(graph.successors(current))
    return frozenset(on_cycle - covered)
