"""Structural validation of flow graphs.

Checks the well-formedness assumptions of paper Section 2:

* the start node has no predecessors and the end node no successors,
* every node lies on a path from ``s`` to ``e``,
* two-way blocks carry their :class:`~repro.ir.stmts.Branch` (if any)
  as the *last* statement, and branches appear only on two-way blocks,
* optionally (``strict``): ``s`` and ``e`` represent ``skip`` — true of
  all *input* programs; transformed programs may carry sunk assignments
  at the entry of ``e``,
* optionally (``require_split``): no critical edges remain.
"""

from __future__ import annotations

from typing import List

from .cfg import FlowGraph
from .splitting import critical_edges
from .stmts import Branch

__all__ = ["ValidationError", "validate", "check"]


class ValidationError(Exception):
    """Raised when a flow graph violates the well-formedness assumptions."""


def check(
    graph: FlowGraph,
    strict: bool = False,
    require_split: bool = False,
) -> List[str]:
    """Return a list of problems (empty when the graph is well-formed)."""
    problems: List[str] = []
    if not graph.has_block(graph.start):
        problems.append(f"missing start node {graph.start!r}")
        return problems
    if not graph.has_block(graph.end):
        problems.append(f"missing end node {graph.end!r}")
        return problems
    if graph.predecessors(graph.start):
        problems.append("start node has predecessors")
    if graph.successors(graph.end):
        problems.append("end node has successors")

    reachable = _closure(graph, graph.start, forward=True)
    coreachable = _closure(graph, graph.end, forward=False)
    for name in graph.nodes():
        if name not in reachable:
            problems.append(f"block {name!r} unreachable from start")
        elif name not in coreachable:
            problems.append(f"block {name!r} cannot reach the end node")

    for name in graph.nodes():
        statements = graph.statements(name)
        for index, stmt in enumerate(statements):
            if isinstance(stmt, Branch):
                if index != len(statements) - 1:
                    problems.append(f"block {name!r}: branch is not the last statement")
                elif len(graph.successors(name)) != 2:
                    problems.append(
                        f"block {name!r}: branch on a block with "
                        f"{len(graph.successors(name))} successors"
                    )

    if strict:
        for name in (graph.start, graph.end):
            if graph.statements(name):
                problems.append(f"block {name!r} must represent the empty statement")
    if require_split:
        for src, dst in critical_edges(graph):
            problems.append(f"critical edge ({src!r}, {dst!r}) has not been split")
    return problems


def validate(
    graph: FlowGraph,
    strict: bool = False,
    require_split: bool = False,
) -> None:
    """Raise :class:`ValidationError` when ``graph`` is ill-formed."""
    problems = check(graph, strict=strict, require_split=require_split)
    if problems:
        raise ValidationError("; ".join(problems))


def _closure(graph: FlowGraph, origin: str, forward: bool) -> frozenset[str]:
    neighbours = graph.successors if forward else graph.predecessors
    seen = {origin}
    stack = [origin]
    while stack:
        node = stack.pop()
        for nxt in neighbours(node):
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return frozenset(seen)
