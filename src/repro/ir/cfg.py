"""Directed flow graphs ``G = (N, E, s, e)``.

Following paper Section 2:

* nodes represent **basic blocks** of statements,
* edges represent the **nondeterministic branching structure**,
* ``s`` and ``e`` are the unique start and end node, both representing the
  empty statement ``skip``; ``s`` has no predecessors and ``e`` has no
  successors, and every node lies on some path from ``s`` to ``e``.

The graph is mutable — the optimiser's elementary transformations rewrite
block statement lists in place — and :meth:`FlowGraph.copy` produces an
independent clone, so callers can keep the original program around for
comparison (every benchmark and test does).

Successor lists are **ordered**: when a two-way block ends in a
:class:`~repro.ir.stmts.Branch`, the first successor is the "true" target.
Analyses never depend on the order; the interpreter does.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .stmts import Assign, Branch, Statement

__all__ = ["FlowGraph", "FlowGraphError", "START", "END"]

#: Conventional names for the unique start and end nodes.
START = "s"
END = "e"


class FlowGraphError(Exception):
    """Raised for structurally invalid flow-graph operations."""


class FlowGraph:
    """A control flow graph over basic blocks of statements."""

    def __init__(
        self,
        start: str = START,
        end: str = END,
        globals_: Iterable[str] = (),
    ) -> None:
        self._blocks: Dict[str, List[Statement]] = {start: [], end: []}
        self._succ: Dict[str, List[str]] = {start: [], end: []}
        self._pred: Dict[str, List[str]] = {start: [], end: []}
        self.start = start
        self.end = end
        #: Variables whose declaration is outside this flow graph; the paper
        #: (footnote 2) requires assignments to them to be considered
        #: relevant, which we model as a virtual use at ``e``.
        self.globals = frozenset(globals_)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_block(self, name: str, statements: Sequence[Statement] = ()) -> str:
        """Add an (initially unconnected) basic block and return its name."""
        if name in self._blocks:
            raise FlowGraphError(f"duplicate block {name!r}")
        self._blocks[name] = list(statements)
        self._succ[name] = []
        self._pred[name] = []
        return name

    def add_edge(self, src: str, dst: str) -> None:
        """Add the edge ``(src, dst)``; parallel edges are rejected."""
        self._require(src)
        self._require(dst)
        if dst in self._succ[src]:
            raise FlowGraphError(f"duplicate edge ({src!r}, {dst!r})")
        if src == self.end:
            raise FlowGraphError("the end node must not have successors")
        if dst == self.start:
            raise FlowGraphError("the start node must not have predecessors")
        self._succ[src].append(dst)
        self._pred[dst].append(src)

    def remove_edge(self, src: str, dst: str) -> None:
        self._require(src)
        self._require(dst)
        try:
            self._succ[src].remove(dst)
            self._pred[dst].remove(src)
        except ValueError:
            raise FlowGraphError(f"no edge ({src!r}, {dst!r})") from None

    def _require(self, name: str) -> None:
        if name not in self._blocks:
            raise FlowGraphError(f"unknown block {name!r}")

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def nodes(self) -> Tuple[str, ...]:
        """All block names, in insertion order (deterministic)."""
        return tuple(self._blocks)

    def edges(self) -> Iterator[Tuple[str, str]]:
        for src, targets in self._succ.items():
            for dst in targets:
                yield (src, dst)

    def successors(self, name: str) -> Tuple[str, ...]:
        """The paper's ``succ(n)`` (ordered)."""
        self._require(name)
        return tuple(self._succ[name])

    def predecessors(self, name: str) -> Tuple[str, ...]:
        """The paper's ``pred(n)`` (ordered)."""
        self._require(name)
        return tuple(self._pred[name])

    def statements(self, name: str) -> Tuple[Statement, ...]:
        self._require(name)
        return tuple(self._blocks[name])

    def set_statements(self, name: str, statements: Sequence[Statement]) -> None:
        """Replace the statement list of block ``name``.

        Input programs keep ``s`` and ``e`` empty (they represent ``skip``,
        Section 2), but the transformations may insert assignments at the
        entry of ``e`` — e.g. sunk assignments to global variables — so no
        emptiness restriction is enforced here; see ``ir.validate``.
        """
        self._require(name)
        self._blocks[name] = list(statements)

    def has_block(self, name: str) -> bool:
        return name in self._blocks

    def __contains__(self, name: object) -> bool:
        return name in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    # ------------------------------------------------------------------
    # Derived program-wide facts
    # ------------------------------------------------------------------
    def instruction_count(self) -> int:
        """The paper's ``i``: number of instructions in the program."""
        return sum(len(stmts) for stmts in self._blocks.values())

    def variables(self) -> frozenset[str]:
        """All variables occurring in the program (the paper's ``V``),
        including declared globals."""
        names: set[str] = set(self.globals)
        for stmts in self._blocks.values():
            for stmt in stmts:
                names |= stmt.used()
                modified = stmt.modified()
                if modified is not None:
                    names.add(modified)
        return frozenset(names)

    def assignment_patterns(self) -> Tuple[str, ...]:
        """The paper's ``AP``: assignment patterns occurring in the program,
        in first-occurrence order (deterministic)."""
        seen: Dict[str, None] = {}
        for name in self._blocks:
            for stmt in self._blocks[name]:
                if isinstance(stmt, Assign):
                    seen.setdefault(stmt.pattern(), None)
        return tuple(seen)

    def assignments(self) -> Iterator[Tuple[str, int, Assign]]:
        """Yield ``(block, index, statement)`` for every assignment."""
        for name in self._blocks:
            for index, stmt in enumerate(self._blocks[name]):
                if isinstance(stmt, Assign):
                    yield (name, index, stmt)

    def pattern_occurrences(self, pattern: str) -> List[Tuple[str, int]]:
        """Locations of every occurrence of ``pattern`` (``α#`` support)."""
        return [
            (name, index)
            for name, index, stmt in self.assignments()
            if stmt.pattern() == pattern
        ]

    def branch_of(self, name: str) -> Optional[Branch]:
        """The trailing :class:`Branch` of block ``name``, if present."""
        stmts = self._blocks[name]
        if stmts and isinstance(stmts[-1], Branch):
            return stmts[-1]
        return None

    # ------------------------------------------------------------------
    # Copying / equality
    # ------------------------------------------------------------------
    def copy(self) -> "FlowGraph":
        """An independent clone (statements are immutable and shared)."""
        clone = FlowGraph.__new__(FlowGraph)
        clone._blocks = {name: list(stmts) for name, stmts in self._blocks.items()}
        clone._succ = {name: list(targets) for name, targets in self._succ.items()}
        clone._pred = {name: list(sources) for name, sources in self._pred.items()}
        clone.start = self.start
        clone.end = self.end
        clone.globals = self.globals
        return clone

    def same_shape(self, other: "FlowGraph") -> bool:
        """True when both graphs have identical nodes and edges.

        The paper's transformations preserve the branching structure
        (Definition 3.6, footnote 5); this is the corresponding check.
        """
        return (
            set(self._blocks) == set(other._blocks)
            and {n: set(t) for n, t in self._succ.items()}
            == {n: set(t) for n, t in other._succ.items()}
            and self.start == other.start
            and self.end == other.end
        )

    def fingerprint(self) -> Tuple:
        """A hashable rendering of the whole program.

        Used by the driver to detect stabilisation (paper Section 5.4) and
        by tests to assert exact expected results.
        """
        return (
            self.start,
            self.end,
            self.globals,
            tuple(sorted((name, tuple(stmts)) for name, stmts in self._blocks.items())),
            tuple(sorted((name, tuple(targets)) for name, targets in self._succ.items())),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FlowGraph):
            return NotImplemented
        return self.fingerprint() == other.fingerprint()

    def __hash__(self) -> int:
        return hash(self.fingerprint())

    def __repr__(self) -> str:
        return (
            f"<FlowGraph {len(self._blocks)} blocks, "
            f"{sum(len(t) for t in self._succ.values())} edges, "
            f"{self.instruction_count()} instructions>"
        )
