"""Post-optimisation tidying.

The paper's transformations never remove ``skip`` statements or the
empty blocks that splitting and draining leave behind — Definition 3.6
compares programs over a *fixed* branching structure, so the core
algorithm must not touch it.  For human consumption (and for a real
backend) the clutter can go afterwards:

* :func:`remove_skips` — drop ``skip`` statements (the start/end nodes
  conceptually *are* skips; any other is noise);
* :func:`merge_chains` — fuse ``u → v`` when ``u`` is ``v``'s only
  predecessor and ``v`` is ``u``'s only successor (neither being ``s``
  or ``e``), concatenating their statements;
* :func:`tidy` — both, to a fixpoint.

These utilities *change the branching structure*; they are deliberately
not part of ``pde``/``pfe`` and the optimality checker refuses graphs
that went through them (different shape).  Semantics is preserved — the
tests replay the interpreter over tidied programs.
"""

from __future__ import annotations

from .cfg import FlowGraph
from .stmts import Skip

__all__ = ["remove_skips", "merge_chains", "tidy"]


def remove_skips(graph: FlowGraph) -> bool:
    """Drop all ``skip`` statements; returns whether anything changed."""
    changed = False
    for node in graph.nodes():
        statements = list(graph.statements(node))
        kept = [stmt for stmt in statements if not isinstance(stmt, Skip)]
        if len(kept) != len(statements):
            graph.set_statements(node, kept)
            changed = True
    return changed


def merge_chains(graph: FlowGraph) -> bool:
    """Fuse straight-line block pairs; returns whether anything changed.

    ``u → v`` merges when the edge is ``u``'s only out-edge and ``v``'s
    only in-edge, and neither endpoint is the start or end node.  ``v``'s
    statements are appended to ``u`` and ``v``'s successors re-attach to
    ``u``.  One merge per call site; the loop in :func:`tidy` reaches the
    fixpoint.
    """
    changed = False
    merged = True
    while merged:
        merged = False
        for u in graph.nodes():
            if u in (graph.start, graph.end):
                continue
            successors = graph.successors(u)
            if len(successors) != 1:
                continue
            v = successors[0]
            if v in (graph.start, graph.end) or v == u:
                continue
            if len(graph.predecessors(v)) != 1:
                continue
            # Fuse: u absorbs v.
            graph.set_statements(
                u, list(graph.statements(u)) + list(graph.statements(v))
            )
            graph.remove_edge(u, v)
            for w in list(graph.successors(v)):
                graph.remove_edge(v, w)
                graph.add_edge(u, w)
            _delete_block(graph, v)
            changed = merged = True
            break
    return changed


def _delete_block(graph: FlowGraph, name: str) -> None:
    """Remove an isolated block from the graph's internal tables."""
    # FlowGraph intentionally exposes no deletion in its public API (the
    # paper's transformations never need one); tidying is the single
    # sanctioned exception.
    assert not graph.successors(name) and not graph.predecessors(name)
    del graph._blocks[name]  # noqa: SLF001 — see comment above
    del graph._succ[name]
    del graph._pred[name]


def tidy(graph: FlowGraph) -> FlowGraph:
    """A tidied copy: skips removed, straight chains merged, repeated to
    a fixpoint."""
    result = graph.copy()
    changed = True
    while changed:
        changed = remove_skips(result)
        changed |= merge_chains(result)
    return result
