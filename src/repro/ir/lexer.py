"""Tokeniser for the textual flow-graph language.

Two surface forms share one token stream (see ``repro.ir.parser``):

* the **structured form** (assignments, ``if``/``while``/``out``), and
* the **explicit graph form** (labelled blocks with successor lists),
  which can express arbitrary — including irreducible — flow graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

__all__ = ["Token", "LexError", "tokenize"]


class LexError(Exception):
    """Raised on malformed input text."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} at line {line}, column {column}")
        self.line = line
        self.column = column


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position."""

    kind: str  # 'ident' | 'number' | 'symbol' | 'eof'
    text: str
    line: int
    column: int

    def is_symbol(self, text: str) -> bool:
        return self.kind == "symbol" and self.text == text

    def is_ident(self, text: Optional[str] = None) -> bool:
        if self.kind != "ident":
            return False
        return text is None or self.text == text

    def __str__(self) -> str:
        if self.kind == "eof":
            return "end of input"
        return repr(self.text)


# Multi-character symbols must be listed before their prefixes.
_SYMBOLS = (
    ":=",
    "->",
    "<=",
    ">=",
    "==",
    "!=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "%",
    "!",
    "(",
    ")",
    "{",
    "}",
    ";",
    ",",
    "?",
    ":",
)


def tokenize(text: str) -> List[Token]:
    """Tokenise ``text``, returning a token list terminated by an ``eof``
    token.  Comments run from ``#`` to end of line."""
    return list(_scan(text))


def _scan(text: str) -> Iterator[Token]:
    line = 1
    column = 1
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char == "\n":
            index += 1
            line += 1
            column = 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue
        if char == "#":
            while index < length and text[index] != "\n":
                index += 1
            continue
        if char.isdigit():
            start = index
            while index < length and text[index].isdigit():
                index += 1
            yield Token("number", text[start:index], line, column)
            column += index - start
            continue
        if char.isalpha() or char == "_":
            start = index
            while index < length and (text[index].isalnum() or text[index] == "_"):
                index += 1
            yield Token("ident", text[start:index], line, column)
            column += index - start
            continue
        for symbol in _SYMBOLS:
            if text.startswith(symbol, index):
                yield Token("symbol", symbol, line, column)
                index += len(symbol)
                column += len(symbol)
                break
        else:
            raise LexError(f"unexpected character {char!r}", line, column)
    yield Token("eof", "", line, column)
