"""Flow-graph intermediate representation (paper Section 2).

Public surface::

    from repro.ir import (
        FlowGraph, GraphBuilder, parse_program, parse_expr,
        Assign, Out, Skip, Branch, Var, Const, BinOp, UnaryOp,
        split_critical_edges, format_graph, to_dot, validate,
    )
"""

from .cfg import END, START, FlowGraph, FlowGraphError
from .builder import GraphBuilder, block_statements
from .dot import to_dot
from .exprs import BinOp, Const, EvalError, Expr, UnaryOp, Var
from .lexer import LexError, tokenize
from .parser import ParseError, parse_expr, parse_program, parse_statement
from .printer import format_block, format_graph, format_side_by_side
from .jsonio import dump_graph, graph_from_json, graph_to_json, load_graph
from .loops import NaturalLoop, back_edges, irreducible_cycle_nodes, natural_loops
from .simplify import merge_chains, remove_skips, tidy
from .splitting import critical_edges, is_synthetic, split_critical_edges
from .stmts import Assign, Branch, Out, Skip, Statement, lhs_of, pattern_of
from .validate import ValidationError, check, validate

__all__ = [
    "START",
    "END",
    "FlowGraph",
    "FlowGraphError",
    "GraphBuilder",
    "block_statements",
    "to_dot",
    "BinOp",
    "Const",
    "EvalError",
    "Expr",
    "UnaryOp",
    "Var",
    "LexError",
    "tokenize",
    "ParseError",
    "parse_expr",
    "parse_program",
    "parse_statement",
    "format_block",
    "format_graph",
    "format_side_by_side",
    "critical_edges",
    "is_synthetic",
    "split_critical_edges",
    "merge_chains",
    "remove_skips",
    "tidy",
    "dump_graph",
    "graph_from_json",
    "graph_to_json",
    "load_graph",
    "NaturalLoop",
    "back_edges",
    "irreducible_cycle_nodes",
    "natural_loops",
    "Assign",
    "Branch",
    "Out",
    "Skip",
    "Statement",
    "lhs_of",
    "pattern_of",
    "ValidationError",
    "check",
    "validate",
]
