"""Statements of the flow-graph language.

The paper (Section 2) classifies statements into three groups:

* **assignment statements** ``v := t``,
* the **empty statement** ``skip``, and
* **relevant statements**, which force all their operands to be alive;
  in the paper these are explicit output operations ``out(t)``.

Footnote 2 adds that, in practice, conditions of if-statements must be
considered relevant as well; we model them as a dedicated ``Branch``
statement that is relevant (its operands are forced alive) and that the
interpreter uses to resolve two-way branches deterministically when a
condition is present.  Analyses treat branching nondeterministically
either way, exactly as in the paper.

Each statement carries the local-predicate accessors the dataflow
analyses of Tables 1 and 2 need:

* ``used()``        — right-hand side variables (``USED`` in Table 1),
* ``relevant_used()`` — rhs variables of relevant statements (``RELV-USED``),
* ``assign_used()`` — rhs variables of assignment statements (``ASS-USED``),
* ``modified()``    — the defined variable, if any (``MOD``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from .exprs import Expr, Var

__all__ = ["Statement", "Assign", "Out", "Skip", "Branch", "lhs_of"]

_EMPTY: frozenset[str] = frozenset()


@dataclass(frozen=True)
class Assign:
    """An assignment statement ``lhs := rhs``.

    Two occurrences of the same *assignment pattern* (Section 2: a string
    of the form ``x := t``) compare equal; occurrences are distinguished
    positionally by their (block, index) location in the flow graph.
    """

    lhs: str
    rhs: Expr

    def used(self) -> frozenset[str]:
        return self.rhs.variables()

    def relevant_used(self) -> frozenset[str]:
        return _EMPTY

    def assign_used(self) -> frozenset[str]:
        return self.rhs.variables()

    def modified(self) -> Optional[str]:
        return self.lhs

    def is_relevant(self) -> bool:
        return False

    def pattern(self) -> str:
        """The assignment pattern string ``x := t`` this is an occurrence of."""
        return f"{self.lhs} := {self.rhs}"

    def __str__(self) -> str:
        return self.pattern()


@dataclass(frozen=True)
class Out:
    """A relevant statement ``out(t)``: forces the operands of ``t`` alive."""

    expr: Expr

    def used(self) -> frozenset[str]:
        return self.expr.variables()

    def relevant_used(self) -> frozenset[str]:
        return self.expr.variables()

    def assign_used(self) -> frozenset[str]:
        return _EMPTY

    def modified(self) -> Optional[str]:
        return None

    def is_relevant(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"out({self.expr})"


@dataclass(frozen=True)
class Skip:
    """The empty statement ``skip``."""

    def used(self) -> frozenset[str]:
        return _EMPTY

    def relevant_used(self) -> frozenset[str]:
        return _EMPTY

    def assign_used(self) -> frozenset[str]:
        return _EMPTY

    def modified(self) -> Optional[str]:
        return None

    def is_relevant(self) -> bool:
        return False

    def __str__(self) -> str:
        return "skip"


@dataclass(frozen=True)
class Branch:
    """A relevant branch condition terminating a two-way block.

    ``Branch(c)`` transfers control to the block's first successor when
    ``c`` evaluates to non-zero and to the second otherwise.  Per paper
    footnote 2 it is a *relevant* statement: its operands are forced
    alive, and no assignment may sink past it.
    """

    cond: Expr

    def used(self) -> frozenset[str]:
        return self.cond.variables()

    def relevant_used(self) -> frozenset[str]:
        return self.cond.variables()

    def assign_used(self) -> frozenset[str]:
        return _EMPTY

    def modified(self) -> Optional[str]:
        return None

    def is_relevant(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"branch {self.cond}"


Statement = Union[Assign, Out, Skip, Branch]


def lhs_of(stmt: Statement) -> Optional[str]:
    """The paper's ``lhs_ι``: the left-hand side variable of ``ι``, if any."""
    return stmt.modified()


def blocks_pattern(stmt: Statement, lhs: str, rhs_vars: frozenset[str]) -> bool:
    """Does ``stmt`` block the sinking of the pattern ``lhs := t``?

    Per Definition 3.1 discussion, the sinking of ``x := t`` is blocked by
    any instruction that (i) modifies an operand of ``t``, (ii) uses ``x``,
    or (iii) modifies ``x``.  ``rhs_vars`` is ``Vars(t)``.
    """
    modified = stmt.modified()
    if modified is not None and (modified in rhs_vars or modified == lhs):
        return True
    return lhs in stmt.used()


def is_statement(value: object) -> bool:
    """Return True when ``value`` is one of the statement node types."""
    return isinstance(value, (Assign, Out, Skip, Branch))


def pattern_of(stmt: Statement) -> Optional[str]:
    """The assignment pattern of ``stmt``, or None for non-assignments."""
    if isinstance(stmt, Assign):
        return stmt.pattern()
    return None


def make_assign(lhs: str, rhs: Union[Expr, str, int]) -> Assign:
    """Convenience constructor accepting bare variable names / integers."""
    if isinstance(rhs, str):
        rhs = Var(rhs)
    elif isinstance(rhs, int):
        from .exprs import Const

        rhs = Const(rhs)
    return Assign(lhs, rhs)
