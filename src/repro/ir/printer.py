"""Pretty-printing of flow graphs.

:func:`format_graph` renders the explicit graph form accepted by
:func:`repro.ir.parser.parse_program`, so ``parse(format(g)) == g`` holds
for every graph whose block names are valid in the surface syntax (the
property tests check this round trip).

:func:`format_side_by_side` renders two programs in adjacent columns —
used by the examples and benchmarks to show before/after pairs the way
the paper's figures do.
"""

from __future__ import annotations

from typing import List

from .cfg import FlowGraph

__all__ = ["format_graph", "format_block", "format_side_by_side"]


def format_block(graph: FlowGraph, name: str) -> str:
    """One ``block`` line of the explicit graph form."""
    parts = [f"block {name}"]
    statements = graph.statements(name)
    if statements:
        body = "; ".join(str(stmt) for stmt in statements)
        parts.append(f"{{ {body} }}")
    successors = graph.successors(name)
    if successors:
        parts.append("-> " + ", ".join(successors))
    return " ".join(parts)


def format_graph(graph: FlowGraph) -> str:
    """Render ``graph`` in the explicit graph form (round-trippable)."""
    lines: List[str] = ["graph"]
    if graph.start != "s":
        lines.append(f"start {graph.start}")
    if graph.end != "e":
        lines.append(f"end {graph.end}")
    if graph.globals:
        lines.append("globals " + ", ".join(sorted(graph.globals)) + ";")
    for name in graph.nodes():
        lines.append(format_block(graph, name))
    return "\n".join(lines) + "\n"


def format_side_by_side(
    left: FlowGraph,
    right: FlowGraph,
    left_title: str = "before",
    right_title: str = "after",
    gap: int = 4,
) -> str:
    """Two programs in adjacent columns, for before/after displays."""
    left_lines = format_graph(left).splitlines()
    right_lines = format_graph(right).splitlines()
    width = max([len(left_title)] + [len(line) for line in left_lines])
    sep = " " * gap
    out = [f"{left_title:<{width}}{sep}{right_title}"]
    out.append(f"{'-' * width}{sep}{'-' * max(len(right_title), 1)}")
    for i in range(max(len(left_lines), len(right_lines))):
        lhs = left_lines[i] if i < len(left_lines) else ""
        rhs = right_lines[i] if i < len(right_lines) else ""
        out.append(f"{lhs:<{width}}{sep}{rhs}".rstrip())
    return "\n".join(out) + "\n"
