"""Dominator computation.

A block ``a`` dominates ``b`` when every path from the start node to
``b`` passes through ``a``.  The core PDE algorithm never needs
dominators (its delayability product encodes the necessary justification
directly), but the Briggs/Cooper-style naive-sinking baseline uses them
to keep its greedy moves semantics-preserving.

Implementation: the classic iterative set intersection over a reverse
post-order, which is simple and fast enough at our scales.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set

from .cfg import FlowGraph

__all__ = ["dominators", "dominates"]


def _reverse_postorder(graph: FlowGraph) -> List[str]:
    order: List[str] = []
    seen: Set[str] = set()

    def visit(node: str) -> None:
        seen.add(node)
        for successor in graph.successors(node):
            if successor not in seen:
                visit(successor)
        order.append(node)

    visit(graph.start)
    order.reverse()
    return order


def dominators(graph: FlowGraph) -> Dict[str, FrozenSet[str]]:
    """Map each reachable block to its full dominator set (including itself)."""
    order = _reverse_postorder(graph)
    everything = frozenset(order)
    dom: Dict[str, FrozenSet[str]] = {node: everything for node in order}
    dom[graph.start] = frozenset((graph.start,))

    changed = True
    while changed:
        changed = False
        for node in order:
            if node == graph.start:
                continue
            preds = [p for p in graph.predecessors(node) if p in dom]
            if not preds:
                continue
            meet = frozenset.intersection(*(dom[p] for p in preds))
            updated = meet | {node}
            if updated != dom[node]:
                dom[node] = updated
                changed = True
    return dom


def dominates(graph: FlowGraph, a: str, b: str) -> bool:
    """Does ``a`` dominate ``b``?"""
    return a in dominators(graph).get(b, frozenset())
