"""JSON interchange for flow graphs.

A machine-readable alternative to the textual surface syntax, for
tooling that wants to construct or consume programs without a parser.
The format is self-describing and versioned::

    {
      "format": "repro-flowgraph",
      "version": 1,
      "start": "s", "end": "e",
      "globals": ["gv"],
      "blocks": [
        {"name": "1", "statements": ["y := a + b"], "successors": ["2", "3"]},
        ...
      ]
    }

Statements travel in the surface syntax (they are parsed back with
:func:`repro.ir.parser.parse_statement`), so the JSON form round-trips
through exactly the same code paths the tests already certify.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from .cfg import FlowGraph
from .parser import parse_statement

__all__ = ["graph_to_json", "graph_from_json", "dump_graph", "load_graph"]

_FORMAT = "repro-flowgraph"
_VERSION = 1


def graph_to_json(graph: FlowGraph) -> Dict[str, Any]:
    """``graph`` as a JSON-serialisable dictionary."""
    return {
        "format": _FORMAT,
        "version": _VERSION,
        "start": graph.start,
        "end": graph.end,
        "globals": sorted(graph.globals),
        "blocks": [
            {
                "name": name,
                "statements": [str(stmt) for stmt in graph.statements(name)],
                "successors": list(graph.successors(name)),
            }
            for name in graph.nodes()
        ],
    }


def graph_from_json(data: Dict[str, Any]) -> FlowGraph:
    """Rebuild a flow graph from :func:`graph_to_json` output."""
    if data.get("format") != _FORMAT:
        raise ValueError(f"not a {_FORMAT} document")
    if data.get("version") != _VERSION:
        raise ValueError(f"unsupported version {data.get('version')!r}")
    graph = FlowGraph(
        start=data["start"], end=data["end"], globals_=data.get("globals", ())
    )
    blocks = data["blocks"]
    for block in blocks:
        name = block["name"]
        if not graph.has_block(name):
            graph.add_block(name)
        graph.set_statements(
            name, [parse_statement(text) for text in block.get("statements", ())]
        )
    for block in blocks:
        for successor in block.get("successors", ()):
            graph.add_edge(block["name"], successor)
    return graph


def dump_graph(graph: FlowGraph, indent: int = 2) -> str:
    """``graph`` as a JSON string."""
    return json.dumps(graph_to_json(graph), indent=indent)


def load_graph(text: str) -> FlowGraph:
    """Parse a JSON string produced by :func:`dump_graph`."""
    return graph_from_json(json.loads(text))
