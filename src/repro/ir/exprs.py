"""Expression terms of the flow-graph language.

The paper (Section 2) works with variables ``v ∈ V`` and terms ``t ∈ T``.
The exact term language is irrelevant to the analyses — they only need to
know, for a term ``t``, the set of variables occurring in it.  We provide a
small, conventional expression language (variables, integer constants,
unary and binary operators) that is rich enough for all paper figures and
for the reference interpreter.

Expressions are immutable and hashable; structural equality is the
equality used throughout (two occurrences of ``a + b`` are the *same
term*, which is what makes assignment patterns well-defined).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterator, Mapping, Union

__all__ = [
    "Expr",
    "Var",
    "Const",
    "UnaryOp",
    "BinOp",
    "EvalError",
    "BINARY_OPERATORS",
    "UNARY_OPERATORS",
]


class EvalError(Exception):
    """Raised when evaluating an expression fails (e.g. division by zero).

    The paper explicitly notes (footnote 3) that dead code elimination may
    *reduce* the potential of run-time errors; the interpreter uses this
    exception to model such errors faithfully.
    """


#: Binary operators understood by the parser and the interpreter.
BINARY_OPERATORS = ("+", "-", "*", "/", "%", "<", "<=", ">", ">=", "==", "!=")

#: Unary operators understood by the parser and the interpreter.
UNARY_OPERATORS = ("-", "!")


@dataclass(frozen=True)
class Var:
    """A program variable ``v ∈ V``."""

    name: str

    def variables(self) -> frozenset[str]:
        return frozenset((self.name,))

    def evaluate(self, env: Mapping[str, int]) -> int:
        try:
            return env[self.name]
        except KeyError:
            raise EvalError(f"variable {self.name!r} is uninitialised") from None

    def subterms(self) -> Iterator["Expr"]:
        yield self

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const:
    """An integer literal."""

    value: int

    def variables(self) -> frozenset[str]:
        return frozenset()

    def evaluate(self, env: Mapping[str, int]) -> int:
        return self.value

    def subterms(self) -> Iterator["Expr"]:
        yield self

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class UnaryOp:
    """A unary operator application, e.g. ``-a`` or ``!flag``."""

    op: str
    operand: "Expr"

    def __post_init__(self) -> None:
        if self.op not in UNARY_OPERATORS:
            raise ValueError(f"unknown unary operator {self.op!r}")

    def variables(self) -> frozenset[str]:
        return self.operand.variables()

    def evaluate(self, env: Mapping[str, int]) -> int:
        value = self.operand.evaluate(env)
        if self.op == "-":
            return -value
        return int(not value)

    def subterms(self) -> Iterator["Expr"]:
        yield self
        yield from self.operand.subterms()

    def __str__(self) -> str:
        return f"{self.op}{_wrap(self.operand)}"


@dataclass(frozen=True)
class BinOp:
    """A binary operator application, e.g. ``a + b``."""

    op: str
    left: "Expr"
    right: "Expr"

    def __post_init__(self) -> None:
        if self.op not in BINARY_OPERATORS:
            raise ValueError(f"unknown binary operator {self.op!r}")

    def variables(self) -> frozenset[str]:
        return self.left.variables() | self.right.variables()

    def evaluate(self, env: Mapping[str, int]) -> int:
        lhs = self.left.evaluate(env)
        rhs = self.right.evaluate(env)
        return _apply_binary(self.op, lhs, rhs)

    def subterms(self) -> Iterator["Expr"]:
        yield self
        yield from self.left.subterms()
        yield from self.right.subterms()

    def __str__(self) -> str:
        return f"{_wrap(self.left)} {self.op} {_wrap(self.right)}"


Expr = Union[Var, Const, UnaryOp, BinOp]


def _wrap(expr: Expr) -> str:
    """Render ``expr``, parenthesising compound subterms."""
    text = str(expr)
    if isinstance(expr, (BinOp, UnaryOp)):
        return f"({text})"
    return text


def _apply_binary(op: str, lhs: int, rhs: int) -> int:
    if op == "+":
        return lhs + rhs
    if op == "-":
        return lhs - rhs
    if op == "*":
        return lhs * rhs
    if op == "/":
        if rhs == 0:
            raise EvalError("division by zero")
        # Truncating division, as in C-family languages.
        return int(lhs / rhs)
    if op == "%":
        if rhs == 0:
            raise EvalError("modulo by zero")
        return lhs - int(lhs / rhs) * rhs
    if op == "<":
        return int(lhs < rhs)
    if op == "<=":
        return int(lhs <= rhs)
    if op == ">":
        return int(lhs > rhs)
    if op == ">=":
        return int(lhs >= rhs)
    if op == "==":
        return int(lhs == rhs)
    if op == "!=":
        return int(lhs != rhs)
    raise AssertionError(f"unreachable operator {op!r}")


def is_expr(value: object) -> bool:
    """Return True when ``value`` is one of the expression node types."""
    return isinstance(value, (Var, Const, UnaryOp, BinOp))


def substitute(expr: Expr, bindings: Mapping[str, Expr]) -> Expr:
    """Return ``expr`` with variables replaced according to ``bindings``.

    Used by tests and by the workload generator; the optimiser itself never
    rewrites terms.
    """
    if isinstance(expr, Var):
        return bindings.get(expr.name, expr)
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, substitute(expr.operand, bindings))
    if isinstance(expr, BinOp):
        return BinOp(expr.op, substitute(expr.left, bindings), substitute(expr.right, bindings))
    raise TypeError(f"not an expression: {expr!r}")


def rename(expr: Expr, mapping: Mapping[str, str]) -> Expr:
    """Rename variables in ``expr`` according to ``mapping``."""
    return substitute(expr, {old: Var(new) for old, new in mapping.items()})


# dataclasses are used for structural equality/hash; keep a defensive check
# that none of the node types accidentally became mutable.
for _cls in (Var, Const, UnaryOp, BinOp):
    assert dataclasses.fields(_cls), _cls
