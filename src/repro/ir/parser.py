"""Parser for the textual flow-graph language.

Two surface forms are supported, distinguished by the leading keyword:

**Structured form** (default) — a statement list with structured control
flow, lowered to a flow graph::

    globals g;
    x := a + b;
    if (x > 0) { out(x); } else { x := 0; }
    while ? { y := y + 1; }      # '?' = nondeterministic branch
    out(y);

**Explicit graph form** — arbitrary (including irreducible) graphs::

    graph
    globals g;
    block s -> 1
    block 1 { y := a + b } -> 2, 3
    block 2 {} -> 4
    block 3 { y := 4 } -> 4
    block 4 { out(y) } -> e
    block e

Block names may be identifiers or numbers (paper figures use numbers).
``s`` and ``e`` are the start and end node unless overridden with
``start NAME`` / ``end NAME`` directives right after ``graph``.
"""

from __future__ import annotations

from typing import List, Optional

from .cfg import END, START, FlowGraph
from .exprs import BinOp, Const, Expr, UnaryOp, Var
from .lexer import LexError, Token, tokenize
from .stmts import Assign, Branch, Out, Skip, Statement

__all__ = ["ParseError", "parse_program", "parse_expr", "parse_statement"]


class ParseError(Exception):
    """Raised on syntactically invalid programs."""


class _TokenStream:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    def peek(self, ahead: int = 0) -> Token:
        return self._tokens[min(self._pos + ahead, len(self._tokens) - 1)]

    def next(self) -> Token:
        token = self.peek()
        if token.kind != "eof":
            self._pos += 1
        return token

    def accept_symbol(self, text: str) -> bool:
        if self.peek().is_symbol(text):
            self.next()
            return True
        return False

    def accept_ident(self, text: str) -> bool:
        if self.peek().is_ident(text):
            self.next()
            return True
        return False

    def expect_symbol(self, text: str) -> Token:
        token = self.next()
        if not token.is_symbol(text):
            raise ParseError(f"expected {text!r}, found {token} (line {token.line})")
        return token

    def expect_ident(self, text: Optional[str] = None) -> Token:
        token = self.next()
        if token.kind != "ident" or (text is not None and token.text != text):
            wanted = repr(text) if text else "an identifier"
            raise ParseError(f"expected {wanted}, found {token} (line {token.line})")
        return token

    def at_eof(self) -> bool:
        return self.peek().kind == "eof"


# ----------------------------------------------------------------------
# Expressions (precedence climbing)
# ----------------------------------------------------------------------

_COMPARISONS = ("<", "<=", ">", ">=", "==", "!=")
_ADDITIVE = ("+", "-")
_MULTIPLICATIVE = ("*", "/", "%")

# Words with special meaning that may not be used as variable names.
_RESERVED = frozenset(
    (
        "if",
        "else",
        "while",
        "out",
        "skip",
        "branch",
        "graph",
        "block",
        "globals",
        "start",
        "end",
    )
)


def _parse_expression(stream: _TokenStream) -> Expr:
    left = _parse_additive(stream)
    token = stream.peek()
    if token.kind == "symbol" and token.text in _COMPARISONS:
        stream.next()
        right = _parse_additive(stream)
        return BinOp(token.text, left, right)
    return left


def _parse_additive(stream: _TokenStream) -> Expr:
    left = _parse_multiplicative(stream)
    while True:
        token = stream.peek()
        if token.kind == "symbol" and token.text in _ADDITIVE:
            stream.next()
            left = BinOp(token.text, left, _parse_multiplicative(stream))
        else:
            return left


def _parse_multiplicative(stream: _TokenStream) -> Expr:
    left = _parse_unary(stream)
    while True:
        token = stream.peek()
        if token.kind == "symbol" and token.text in _MULTIPLICATIVE:
            stream.next()
            left = BinOp(token.text, left, _parse_unary(stream))
        else:
            return left


def _parse_unary(stream: _TokenStream) -> Expr:
    token = stream.peek()
    if token.is_symbol("-") or token.is_symbol("!"):
        stream.next()
        return UnaryOp(token.text, _parse_unary(stream))
    return _parse_primary(stream)


def _parse_primary(stream: _TokenStream) -> Expr:
    token = stream.next()
    if token.kind == "number":
        return Const(int(token.text))
    if token.kind == "ident":
        if token.text in _RESERVED:
            raise ParseError(
                f"reserved word {token.text!r} used as a variable (line {token.line})"
            )
        return Var(token.text)
    if token.is_symbol("("):
        expr = _parse_expression(stream)
        stream.expect_symbol(")")
        return expr
    raise ParseError(f"expected an expression, found {token} (line {token.line})")


# ----------------------------------------------------------------------
# Simple statements (shared between both surface forms)
# ----------------------------------------------------------------------


def _parse_simple_statement(stream: _TokenStream) -> Statement:
    token = stream.peek()
    if token.is_ident("out"):
        stream.next()
        stream.expect_symbol("(")
        expr = _parse_expression(stream)
        stream.expect_symbol(")")
        return Out(expr)
    if token.is_ident("skip"):
        stream.next()
        return Skip()
    if token.is_ident("branch"):
        # Only valid in the explicit graph form, where the block's edge list
        # supplies the two targets (true target first).
        stream.next()
        return Branch(_parse_expression(stream))
    if token.kind == "ident":
        name = stream.expect_ident().text
        if name in _RESERVED:
            raise ParseError(f"reserved word {name!r} used as a variable (line {token.line})")
        stream.expect_symbol(":=")
        return Assign(name, _parse_expression(stream))
    raise ParseError(f"expected a statement, found {token} (line {token.line})")


# ----------------------------------------------------------------------
# Structured form
# ----------------------------------------------------------------------


class _StructuredLowering:
    """Lowers structured syntax to a flow graph.

    Maintains a current block being filled; control-flow statements close
    it and wire up fresh blocks.
    """

    def __init__(self, globals_: frozenset[str]) -> None:
        self.graph = FlowGraph(START, END, globals_)
        self._counter = 0
        self._current = self._fresh()
        self.graph.add_edge(START, self._current)

    def _fresh(self) -> str:
        self._counter += 1
        name = f"b{self._counter}"
        self.graph.add_block(name)
        return name

    def _append(self, stmt: Statement) -> None:
        stmts = list(self.graph.statements(self._current))
        stmts.append(stmt)
        self.graph.set_statements(self._current, stmts)

    def statement_list(self, stream: _TokenStream, *, top_level: bool) -> None:
        while True:
            token = stream.peek()
            if token.kind == "eof":
                if not top_level:
                    raise ParseError("unexpected end of input inside a block")
                return
            if token.is_symbol("}"):
                if top_level:
                    raise ParseError(f"unmatched '}}' (line {token.line})")
                return
            self.statement(stream)

    def statement(self, stream: _TokenStream) -> None:
        token = stream.peek()
        if token.is_ident("if"):
            self._if_statement(stream)
        elif token.is_ident("while"):
            self._while_statement(stream)
        else:
            self._append(_parse_simple_statement(stream))
            stream.expect_symbol(";")

    def _condition(self, stream: _TokenStream) -> Optional[Expr]:
        """Parse ``( expr )`` or the nondeterministic placeholder ``?``."""
        if stream.accept_symbol("?"):
            return None
        stream.expect_symbol("(")
        expr = _parse_expression(stream)
        stream.expect_symbol(")")
        return expr

    def _braced_body(self, stream: _TokenStream) -> None:
        stream.expect_symbol("{")
        self.statement_list(stream, top_level=False)
        stream.expect_symbol("}")

    def _if_statement(self, stream: _TokenStream) -> None:
        stream.expect_ident("if")
        cond = self._condition(stream)
        if cond is not None:
            self._append(Branch(cond))
        fork = self._current

        then_entry = self._fresh()
        self.graph.add_edge(fork, then_entry)
        self._current = then_entry
        self._braced_body(stream)
        then_exit = self._current

        else_exit: Optional[str] = None
        else_entry: Optional[str] = None
        if stream.accept_ident("else"):
            else_entry = self._fresh()
            self.graph.add_edge(fork, else_entry)
            self._current = else_entry
            self._braced_body(stream)
            else_exit = self._current

        join = self._fresh()
        self.graph.add_edge(then_exit, join)
        if else_exit is not None:
            self.graph.add_edge(else_exit, join)
        else:
            self.graph.add_edge(fork, join)
        self._current = join

    def _while_statement(self, stream: _TokenStream) -> None:
        stream.expect_ident("while")
        cond = self._condition(stream)
        header = self._fresh()
        self.graph.add_edge(self._current, header)
        if cond is not None:
            self.graph.set_statements(header, [Branch(cond)])

        body_entry = self._fresh()
        self.graph.add_edge(header, body_entry)
        self._current = body_entry
        self._braced_body(stream)
        self.graph.add_edge(self._current, header)

        exit_block = self._fresh()
        self.graph.add_edge(header, exit_block)
        self._current = exit_block

    def finish(self) -> FlowGraph:
        self.graph.add_edge(self._current, END)
        return self.graph


# ----------------------------------------------------------------------
# Explicit graph form
# ----------------------------------------------------------------------


def _parse_graph_form(stream: _TokenStream, globals_: frozenset[str]) -> FlowGraph:
    start = START
    end = END
    while True:
        if stream.accept_ident("start"):
            start = _block_name(stream)
            continue
        if stream.accept_ident("end"):
            end = _block_name(stream)
            continue
        break
    if not globals_:
        globals_ = _parse_globals(stream)
    graph = FlowGraph(start, end, globals_)

    pending_edges: List[tuple[str, str]] = []
    while not stream.at_eof():
        stream.expect_ident("block")
        name = _block_name(stream)
        if name not in (start, end):
            graph.add_block(name)
        statements: List[Statement] = []
        if stream.accept_symbol("{"):
            while not stream.peek().is_symbol("}"):
                statements.append(_parse_simple_statement(stream))
                if not stream.accept_symbol(";"):
                    break
            stream.expect_symbol("}")
        graph.set_statements(name, statements)
        if stream.accept_symbol("->"):
            pending_edges.append((name, _block_name(stream)))
            while stream.accept_symbol(","):
                pending_edges.append((name, _block_name(stream)))

    for src, dst in pending_edges:
        if not graph.has_block(dst):
            raise ParseError(f"edge to undeclared block {dst!r}")
        graph.add_edge(src, dst)
    return graph


def _block_name(stream: _TokenStream) -> str:
    token = stream.next()
    if token.kind in ("ident", "number"):
        return token.text
    raise ParseError(f"expected a block name, found {token} (line {token.line})")


def _parse_globals(stream: _TokenStream) -> frozenset[str]:
    if not stream.accept_ident("globals"):
        return frozenset()
    names = [stream.expect_ident().text]
    while stream.accept_symbol(","):
        names.append(stream.expect_ident().text)
    stream.expect_symbol(";")
    return frozenset(names)


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------


def parse_program(text: str) -> FlowGraph:
    """Parse ``text`` (structured or explicit graph form) to a flow graph.

    The returned graph is *not* edge-split; run
    :func:`repro.ir.splitting.split_critical_edges` (the optimiser driver
    does this automatically).
    """
    try:
        stream = _TokenStream(tokenize(text))
    except LexError as error:
        raise ParseError(str(error)) from error
    if stream.accept_ident("graph"):
        return _parse_graph_form(stream, frozenset())
    globals_ = _parse_globals(stream)
    lowering = _StructuredLowering(globals_)
    lowering.statement_list(stream, top_level=True)
    return lowering.finish()


def parse_expr(text: str) -> Expr:
    """Parse a single expression (convenience for tests and builders)."""
    stream = _TokenStream(tokenize(text))
    expr = _parse_expression(stream)
    if not stream.at_eof():
        raise ParseError(f"trailing input after expression: {stream.peek()}")
    return expr


def parse_statement(text: str) -> Statement:
    """Parse a single simple statement (no control flow)."""
    stream = _TokenStream(tokenize(text))
    stmt = _parse_simple_statement(stream)
    stream.accept_symbol(";")
    if not stream.at_eof():
        raise ParseError(f"trailing input after statement: {stream.peek()}")
    return stmt
