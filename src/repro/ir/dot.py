"""Graphviz (dot) export of flow graphs.

Produces drawings in the visual style of the paper's figures: numbered
boxes containing statement lists, with the start and end node drawn as
small circles.
"""

from __future__ import annotations

from typing import List

from .cfg import FlowGraph

__all__ = ["to_dot"]


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def to_dot(graph: FlowGraph, title: str = "") -> str:
    """Render ``graph`` as a Graphviz digraph."""
    lines: List[str] = ["digraph flowgraph {"]
    if title:
        lines.append(f'  label="{_escape(title)}";')
        lines.append("  labelloc=t;")
    lines.append("  node [shape=box, fontname=monospace];")
    for name in graph.nodes():
        statements = graph.statements(name)
        if name in (graph.start, graph.end):
            lines.append(f'  "{_escape(name)}" [shape=circle, label="{_escape(name)}"];')
            continue
        body = "\\l".join(_escape(str(stmt)) for stmt in statements)
        if body:
            body += "\\l"
        label = f"{_escape(name)}|{body}" if body else _escape(name)
        lines.append(f'  "{_escape(name)}" [shape=record, label="{{{label}}}"];')
    for src, dst in graph.edges():
        lines.append(f'  "{_escape(src)}" -> "{_escape(dst)}";')
    lines.append("}")
    return "\n".join(lines) + "\n"
