"""Critical edge splitting (paper Section 2.1, Figure 8).

A **critical edge** leads from a node with more than one successor to a
node with more than one predecessor.  Like partial redundancy
elimination, partial dead code elimination can be *blocked* by critical
edges: in Figure 8(a) the partially dead assignment at node 1 cannot be
moved to node 2 without introducing a new computation on the other path
into node 2.  Splitting the edge ``(1, 2)`` by a synthetic node ``S1,2``
creates the required insertion point.

Following the paper, the optimiser restricts its attention to programs
where every critical edge has been split; :func:`split_critical_edges`
establishes that normal form up front.
"""

from __future__ import annotations

from typing import List, Tuple

from .cfg import FlowGraph

__all__ = ["critical_edges", "split_critical_edges", "synthetic_name", "is_synthetic"]

#: Prefix used for synthetic nodes inserted into split edges; mirrors the
#: paper's ``S_{m,n}`` notation.
_SYNTHETIC_PREFIX = "S"


def critical_edges(graph: FlowGraph) -> List[Tuple[str, str]]:
    """All edges from a multi-successor node to a multi-predecessor node."""
    return [
        (src, dst)
        for src, dst in graph.edges()
        if len(graph.successors(src)) > 1 and len(graph.predecessors(dst)) > 1
    ]


def synthetic_name(graph: FlowGraph, src: str, dst: str) -> str:
    """A fresh name for the node splitting ``(src, dst)``.

    Mirrors the paper's ``S_{m,n}`` notation, rendered ``S<m>_<n>`` so
    the name survives the textual surface syntax round trip.
    """
    base = f"{_SYNTHETIC_PREFIX}{src}_{dst}"
    name = base
    suffix = 1
    while graph.has_block(name):
        suffix += 1
        name = f"{base}_{suffix}"
    return name


def is_synthetic(name: str) -> bool:
    """Was ``name`` produced by :func:`synthetic_name`?"""
    return name.startswith(_SYNTHETIC_PREFIX) and "_" in name


def split_critical_edges(graph: FlowGraph) -> FlowGraph:
    """Return a copy of ``graph`` with every critical edge split.

    Each critical edge ``(m, n)`` is replaced by ``(m, S_{m,n})`` and
    ``(S_{m,n}, n)`` where ``S_{m,n}`` is a fresh empty block.  The edge
    order at ``m`` and ``n`` is preserved, so branch semantics (first
    successor = true target) survive the transformation.
    """
    result = graph.copy()
    for src, dst in critical_edges(graph):
        middle = synthetic_name(result, src, dst)
        result.add_block(middle)
        _replace_successor(result, src, dst, middle)
        result.add_edge(middle, dst)
    return result


def _replace_successor(graph: FlowGraph, src: str, old: str, new: str) -> None:
    """Rewire ``src``'s successor ``old`` to ``new``, keeping edge order."""
    successors = [new if dst == old else dst for dst in graph.successors(src)]
    for dst in graph.successors(src):
        graph.remove_edge(src, dst)
    for dst in successors:
        graph.add_edge(src, dst)
