"""Command-line interface.

::

    pde optimize program.pde                 # run PDE, print the result
    pde optimize --variant pfe --diff p.pde  # PFE, before/after columns
    pde optimize --dot p.pde > out.dot       # Graphviz of the result
    pde analyze p.pde                        # dump Table 1/2 analyses
    pde explain p.pde                        # narrate round by round
    pde profile p.pde                        # Monte-Carlo cost before/after
    pde compile --opt --peephole p.pde       # lower to bytecode
    pde figures                              # list the paper figures
    pde figures --run 5-6                    # reproduce one figure

Programs are read in either surface form (see ``repro.ir.parser``); use
``-`` for stdin.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .core.driver import optimize
from .dataflow.dead import analyze_dead
from .dataflow.delay import analyze_delayability
from .dataflow.faint import analyze_faint
from .figures import ALL_FIGURES
from .ir.cfg import FlowGraph
from .ir.dot import to_dot
from .ir.parser import ParseError, parse_program
from .ir.printer import format_graph, format_side_by_side
from .ir.splitting import split_critical_edges

__all__ = ["main"]


def _read_program(path: str) -> FlowGraph:
    if path == "-":
        return parse_program(sys.stdin.read())
    with open(path, "r", encoding="utf-8") as handle:
        return parse_program(handle.read())


def _cmd_optimize(args: argparse.Namespace) -> int:
    graph = _read_program(args.program)
    if args.verify:
        from .core.verify import verified_pde, verified_pfe

        runner = verified_pfe if args.variant == "pfe" else verified_pde
        result = runner(graph)
        oracles = ", ".join(result.verification.oracles)
        print(f"# verified: {oracles}", file=sys.stderr)
    else:
        result = optimize(graph, variant=args.variant)
    if args.dot:
        print(to_dot(result.graph, title=f"{args.variant}({args.program})"))
    elif args.diff:
        print(format_side_by_side(result.original, result.graph))
    else:
        print(format_graph(result.graph), end="")
    if args.stats:
        stats = result.stats
        print(
            f"# rounds={stats.rounds} r={stats.component_applications} "
            f"eliminated={stats.eliminated} sunk={stats.sunk_removed}"
            f"->{stats.sunk_inserted} "
            f"instructions={stats.original_instructions}->{stats.final_instructions} "
            f"w={stats.code_growth_factor:.2f}",
            file=sys.stderr,
        )
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    """Narrate the optimisation round by round."""
    graph = _read_program(args.program)
    result = optimize(graph, variant=args.variant, trace=True)
    print(f"# input ({result.original.instruction_count()} instructions, "
          f"critical edges split)")
    print(format_graph(result.original))
    step_name = "fce" if args.variant == "pfe" else "dce"
    for number, record in enumerate(result.stats.history, start=1):
        print(f"# ── round {number} ──")
        if record.elimination.removed:
            for block, index, pattern in record.elimination.removed:
                print(f"#   {step_name}: removed {pattern!r} from block {block}")
        else:
            print(f"#   {step_name}: nothing to eliminate")
        if record.sinking.removed or record.sinking.inserted:
            for block, _index, pattern in record.sinking.removed:
                print(f"#   ask: candidate {pattern!r} leaves block {block}")
            for block, where, pattern in record.sinking.inserted:
                print(f"#   ask: instance {pattern!r} inserted at {where} of {block}")
        else:
            print("#   ask: nothing to sink")
        if record.after_sinking is not None and (
            record.elimination.changed or record.sinking.changed
        ):
            print(format_graph(record.after_sinking))
    stats = result.stats
    print(
        f"# stabilised after {stats.rounds} round(s): "
        f"{stats.eliminated} eliminated, {stats.sunk_removed} sunk, "
        f"{stats.original_instructions} -> {stats.final_instructions} instructions"
    )
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    graph = split_critical_edges(_read_program(args.program))
    print(format_graph(graph))
    dead = analyze_dead(graph)
    faint = analyze_faint(graph)
    delay = analyze_delayability(graph)
    print("# Table 1 — dead / faint variables")
    for node in graph.nodes():
        print(
            f"  {node}: N-DEAD={dead.universe.format(dead.entry(node))} "
            f"X-DEAD={dead.universe.format(dead.exit(node))} "
            f"N-FAINT={faint.universe.format(faint.entry(node))} "
            f"X-FAINT={faint.universe.format(faint.exit(node))}"
        )
    print("# Table 2 — delayability / insertion points")
    universe = delay.patterns.universe
    for node in graph.nodes():
        print(
            f"  {node}: N-DELAYED={universe.format(delay.n_delayed[node])} "
            f"X-DELAYED={universe.format(delay.x_delayed[node])} "
            f"N-INSERT={universe.format(delay.n_insert(node))} "
            f"X-INSERT={universe.format(delay.x_insert(node))}"
        )
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    """Lower (optionally after optimising) to bytecode and list it."""
    from .codegen import format_listing, lower, peephole

    graph = _read_program(args.program)
    if args.opt:
        graph = optimize(graph, variant=args.variant).graph
    else:
        graph = split_critical_edges(graph)
    program = lower(graph)
    if args.peephole:
        program = peephole(program)
    print(format_listing(program))
    print(f"; {len(program)} instructions", file=sys.stderr)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Monte-Carlo profile: expected cost before/after, hottest blocks."""
    from .interp.profile import collect_profile, hottest_blocks

    graph = _read_program(args.program)
    result = optimize(graph, variant=args.variant)
    before = collect_profile(result.original, trials=args.trials, seed=args.seed)
    after = collect_profile(result.graph, trials=args.trials, seed=args.seed)
    print(f"# {args.trials} sampled executions (seed {args.seed})")
    print(f"expected executed assignments: {before.mean_assignments:.2f} -> "
          f"{after.mean_assignments:.2f}")
    if before.mean_assignments > 0:
        saved = 1 - after.mean_assignments / before.mean_assignments
        print(f"saving: {saved:.1%}")
    print("hottest blocks (before):")
    for name, freq in hottest_blocks(
        result.original, top=5, trials=args.trials, seed=args.seed
    ):
        print(f"  {name:>8}: {freq:6.2f} visits/run")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    if not args.run:
        for figure in ALL_FIGURES:
            print(f"{figure.number:>4}  {figure.title}")
        return 0
    for figure in ALL_FIGURES:
        if figure.number == args.run:
            result = optimize(figure.before(), variant=args.variant)
            print(f"Figure {figure.number}: {figure.title}")
            print(f"Claim: {figure.claim}\n")
            print(format_side_by_side(result.original, result.graph))
            expected = (
                figure.expected_pfe() if args.variant == "pfe" else figure.expected_pde()
            )
            if expected is not None:
                verdict = "matches" if result.graph == expected else "DIFFERS FROM"
                print(f"Result {verdict} the frozen expectation.")
            return 0
    print(f"unknown figure {args.run!r}", file=sys.stderr)
    return 1


def build_parser() -> argparse.ArgumentParser:
    """The complete argument parser (exposed for shell-completion tools)."""
    parser = argparse.ArgumentParser(
        prog="pde",
        description="Partial dead code elimination (Knoop/Rüthing/Steffen, PLDI 1994)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    opt = sub.add_parser("optimize", help="optimise a program")
    opt.add_argument("program", help="program file, or - for stdin")
    opt.add_argument("--variant", choices=("pde", "pfe"), default="pde")
    opt.add_argument("--diff", action="store_true", help="show before/after columns")
    opt.add_argument("--dot", action="store_true", help="emit Graphviz instead of text")
    opt.add_argument("--stats", action="store_true", help="print statistics to stderr")
    opt.add_argument(
        "--verify",
        action="store_true",
        help="certify the result against all oracles before printing",
    )
    opt.set_defaults(func=_cmd_optimize)

    ana = sub.add_parser("analyze", help="dump the Table 1/2 analyses")
    ana.add_argument("program", help="program file, or - for stdin")
    ana.set_defaults(func=_cmd_analyze)

    exp = sub.add_parser("explain", help="narrate the optimisation round by round")
    exp.add_argument("program", help="program file, or - for stdin")
    exp.add_argument("--variant", choices=("pde", "pfe"), default="pde")
    exp.set_defaults(func=_cmd_explain)

    comp = sub.add_parser("compile", help="lower to bytecode (optionally optimised)")
    comp.add_argument("program", help="program file, or - for stdin")
    comp.add_argument("--opt", action="store_true", help="run pde/pfe before lowering")
    comp.add_argument("--peephole", action="store_true", help="coalesce lowering copies")
    comp.add_argument("--variant", choices=("pde", "pfe"), default="pde")
    comp.set_defaults(func=_cmd_compile)

    prof = sub.add_parser("profile", help="Monte-Carlo cost profile before/after")
    prof.add_argument("program", help="program file, or - for stdin")
    prof.add_argument("--variant", choices=("pde", "pfe"), default="pde")
    prof.add_argument("--trials", type=int, default=200)
    prof.add_argument("--seed", type=int, default=0)
    prof.set_defaults(func=_cmd_profile)

    fig = sub.add_parser("figures", help="list or reproduce paper figures")
    fig.add_argument("--run", help="figure number to reproduce (e.g. 5-6)")
    fig.add_argument("--variant", choices=("pde", "pfe"), default="pde")
    fig.set_defaults(func=_cmd_figures)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ParseError as error:
        print(f"parse error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"cannot read program: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
