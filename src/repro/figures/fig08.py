"""Figure 8 — critical edges.

The assignment ``x := a + b`` at node 1 is partially dead with respect
to the redefinition at node 3, but it cannot safely move to node 2:
node 2 has another predecessor, so the move would introduce a new
computation on that path.  Splitting the critical edge ``(1, 2)`` with
the synthetic node ``S1_2`` creates exactly the insertion point the
elimination needs — which is why the algorithm restricts attention to
programs whose critical edges have been split (Section 2.1).
"""

from __future__ import annotations

from .base import PaperFigure

FIGURE = PaperFigure(
    number="8",
    title="Critical edge splitting enables partial dead code elimination",
    claim=(
        "after splitting, x := a+b lives only in S1_2: executed exactly on "
        "the paths that reach the use at node 2 via node 1"
    ),
    before_text="""
        graph
        block s -> 0, 1
        block 0 {} -> 2
        block 1 { x := a + b } -> 2, 3
        block 2 { out(x) } -> 4
        block 3 { x := 5; out(x) } -> 4
        block 4 {} -> e
        block e
    """,
    expected_pde_text="""
        graph
        block s -> 0, 1
        block 0 {} -> 2
        block 1 {} -> S1_2, 3
        block 2 { out(x) } -> 4
        block 3 { x := 5; out(x) } -> 4
        block 4 {} -> e
        block S1_2 { x := a + b } -> 2
        block e
    """,
)
