"""Figures 3 & 4 — second-order effects on a loop-invariant pair.

The loop body computes ``y := a + b; c := y - e``, whose values are
consumed only after the loop.  Standard loop-invariant code motion
cannot hoist the pair because the first instruction defines an operand
of the second (and interleaving code motion with copy propagation [10]
would still leave the assignment to the temporary in the loop).  PDE
succeeds by *sinking*: removing ``c := y - e`` from the loop suspends
the blockade of ``y := a + b``, which then leaves the loop as well —
a sinking-elimination + sinking-sinking chain.
"""

from __future__ import annotations

from .base import PaperFigure

FIGURE = PaperFigure(
    number="3-4",
    title="Loop-invariant pair removed from the loop by exhaustive sinking",
    claim=(
        "both loop-body assignments end up after the loop; the loop body "
        "becomes empty; the partially dead x := c+1 additionally moves onto "
        "the only branch that outputs x"
    ),
    before_text="""
        graph
        block s -> 1
        block 1 {} -> 2
        block 2 { y := a + b; c := y - e } -> 3
        block 3 {} -> 2, 4
        block 4 { x := c + 1 } -> 7, 8
        block 7 { out(c) } -> 9
        block 8 { out(x) } -> 9
        block 9 {} -> e
        block e
    """,
    expected_pde_text="""
        graph
        block s -> 1
        block 1 -> 2
        block 2 -> 3
        block 3 -> S3_2, 4
        block 4 -> 7, 8
        block 7 { y := a + b; c := y - e; out(c) } -> 9
        block 8 { y := a + b; c := y - e; x := c + 1; out(x) } -> 9
        block 9 -> e
        block S3_2 -> 2
        block e
    """,
    notes=(
        "The loop back edge (3,2) is critical and gets split into S3_2. "
        "The invariant pair is duplicated onto both post-loop branches — "
        "path-wise each execution still computes it exactly once, and "
        "x := c+1 now only executes when out(x) needs it."
    ),
)
