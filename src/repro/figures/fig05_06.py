"""Figures 5 & 6 — arbitrary control flow: loops and irreducibility.

``x := a + b`` at node 1 is moved *across* the irreducible loop
construct (nodes 3 ⇄ 4, entered from both sides), removed as dead code
on the branch through node 6 (which redefines ``x``), and inserted into
the synthetic node ``S4_5``.  There it is *still partially dead* —
``x`` is unused when the second loop iterates zero times — but
eliminating it would require moving ``x := a + b`` *into* the second
loop, dramatically impairing executions that iterate often.  PDE
guarantees every execution of the result is at least as fast as the
corresponding original execution, so it stops exactly here.
"""

from __future__ import annotations

from .base import PaperFigure

FIGURE = PaperFigure(
    number="5-6",
    title="Profitable motion across loops, no fatal motion into loops",
    claim=(
        "x := a+b crosses the irreducible loop, dies on the path that "
        "redefines x, lands in S4_5, and is NOT sunk into the second loop "
        "although it stays partially dead there"
    ),
    before_text="""
        graph
        block s -> 1
        block 1 { x := a + b } -> 2
        block 2 -> 3, 4
        block 3 -> 4, 6
        block 4 -> 3, 5
        block 6 { x := c } -> 9
        block 5 -> 7, 10
        block 7 { y := y + x } -> 5
        block 9 { out(x) } -> e
        block 10 { out(y) } -> e
        block e
    """,
    expected_pde_text="""
        graph
        block s -> 1
        block 1 -> 2
        block 2 -> S2_3, S2_4
        block 3 -> S3_4, 6
        block 4 -> S4_3, S4_5
        block 6 -> 9
        block 5 -> 7, 10
        block 7 { y := y + x } -> 5
        block 9 { x := c; out(x) } -> e
        block 10 { out(y) } -> e
        block S2_3 -> 3
        block S2_4 -> 4
        block S3_4 -> 4
        block S4_3 -> 3
        block S4_5 { x := a + b } -> 5
        block e
    """,
    notes=(
        "x := c additionally sinks from node 6 to node 9 (its unique use) — "
        "a further legal improvement the paper's drawing does not show."
    ),
)
