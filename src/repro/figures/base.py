"""Common machinery for the paper-figures corpus.

Each ``figNN`` module recreates one figure of the paper as a
:class:`PaperFigure`: the *before* program exactly as drawn (modulo the
textual surface syntax) and the *expected* result of ``pde`` (and
``pfe`` where the figure distinguishes them), frozen from a manually
reviewed run and cross-checked against the paper's prose.  The
benchmark ``benchmarks/bench_figures.py`` re-runs every figure and
asserts the expectation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..ir.cfg import FlowGraph
from ..ir.parser import parse_program

__all__ = ["PaperFigure"]


@dataclass(frozen=True)
class PaperFigure:
    """One reproducible paper figure."""

    number: str  # e.g. "1-2" for a before/after pair
    title: str
    #: What the paper claims the figure shows; asserted by the tests.
    claim: str
    before_text: str
    expected_pde_text: Optional[str] = None
    expected_pfe_text: Optional[str] = None
    notes: str = ""

    def before(self) -> FlowGraph:
        return parse_program(self.before_text)

    def expected_pde(self) -> Optional[FlowGraph]:
        if self.expected_pde_text is None:
            return None
        return parse_program(self.expected_pde_text)

    def expected_pfe(self) -> Optional[FlowGraph]:
        if self.expected_pfe_text is None:
            return None
        return parse_program(self.expected_pfe_text)
