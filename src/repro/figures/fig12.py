"""Figure 12 — the elimination-elimination effect.

``y := a + b`` at node 4 is dead (``y`` is redefined at node 5 before
its use), and only *after* its removal does ``a := 2`` at node 1 become
dead too.  For partial **dead** code elimination this is a second-order
effect requiring two elimination passes; for partial **faint** code
elimination it is first-order — both assignments are faint and fall in
a single ``fce`` pass (the test and benchmark assert exactly this
asymmetry).
"""

from __future__ import annotations

from .base import PaperFigure

FIGURE = PaperFigure(
    number="12",
    title="Eliminating dead code exposes more dead code",
    claim=(
        "both assignments disappear; iterated dce needs two passes while "
        "one fce pass removes both simultaneously"
    ),
    before_text="""
        graph
        block s -> 1
        block 1 { a := 2 } -> 2
        block 2 {} -> 3, 4
        block 3 {} -> 5
        block 4 { y := a + b } -> 5
        block 5 { y := c + d } -> 6
        block 6 { out(y) } -> e
        block e
    """,
    expected_pde_text="""
        graph
        block s -> 1
        block 1 {} -> 2
        block 2 {} -> 3, 4
        block 3 {} -> 5
        block 4 {} -> 5
        block 5 {} -> 6
        block 6 { y := c + d; out(y) } -> e
        block e
    """,
    expected_pfe_text="""
        graph
        block s -> 1
        block 1 {} -> 2
        block 2 {} -> 3, 4
        block 3 {} -> 5
        block 4 {} -> 5
        block 5 {} -> 6
        block 6 { y := c + d; out(y) } -> e
        block e
    """,
    notes="y := c+d also sinks to its use in node 6.",
)
