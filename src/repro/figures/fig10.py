"""Figure 10 — the sinking-sinking effect.

``y := a + b`` (node 1) is blocked at node 2, whose ``a := c``
redefines an operand.  Sinking ``a := c`` first (its value is needed
only at ``x := a + c``) unblocks ``y := a + b``, which then reaches
nodes 3 and 4; at node 3 the redefinition ``y := 5`` kills it.  One
round of sinking cannot do this — the exhaustive alternation can.
"""

from __future__ import annotations

from .base import PaperFigure

FIGURE = PaperFigure(
    number="10",
    title="Sinking one assignment opens the way for another",
    claim=(
        "a := c sinks to the x := a+c context; that unblocks y := a+b, "
        "which dies on the branch redefining y and survives on the other"
    ),
    before_text="""
        graph
        block s -> 1
        block 1 { y := a + b } -> 2
        block 2 { a := c } -> 3, 4
        block 3 { y := 5 } -> 5
        block 4 {} -> 5
        block 5 { x := a + c } -> 6
        block 6 { out(x + y) } -> e
        block e
    """,
    expected_pde_text="""
        graph
        block s -> 1
        block 1 {} -> 2
        block 2 {} -> 3, 4
        block 3 { y := 5 } -> 5
        block 4 { y := a + b } -> 5
        block 5 {} -> 6
        block 6 { a := c; x := a + c; out(x + y) } -> e
        block e
    """,
    notes=(
        "Our result additionally sinks the a := c / x := a+c pair from "
        "node 5 into node 6 — node 5 has a single successor whose entry "
        "is the next use, so this is a further no-cost move the paper's "
        "drawing leaves at node 5."
    ),
)
