"""The paper's Figures 1–13 as machine-checked program pairs."""

from .base import PaperFigure
from .fig01_02 import FIGURE as FIG_1_2
from .fig03_04 import FIGURE as FIG_3_4
from .fig05_06 import FIGURE as FIG_5_6
from .fig07 import FIGURE as FIG_7
from .fig08 import FIGURE as FIG_8
from .fig09 import FIGURE as FIG_9
from .fig10 import FIGURE as FIG_10
from .fig11 import FIGURE as FIG_11
from .fig12 import FIGURE as FIG_12
from .fig13 import PANEL as FIG_13_PANEL

#: Every transformation figure, in paper order.
ALL_FIGURES = (
    FIG_1_2,
    FIG_3_4,
    FIG_5_6,
    FIG_7,
    FIG_8,
    FIG_9,
    FIG_10,
    FIG_11,
    FIG_12,
)

__all__ = [
    "PaperFigure",
    "ALL_FIGURES",
    "FIG_1_2",
    "FIG_3_4",
    "FIG_5_6",
    "FIG_7",
    "FIG_8",
    "FIG_9",
    "FIG_10",
    "FIG_11",
    "FIG_12",
    "FIG_13_PANEL",
]
