"""Figure 11 — the elimination-sinking effect.

Neither assignment of node 1 can be sunk admissibly: ``y := a + b``
cannot pass ``a := c`` (operand redefined), and ``a := c`` is at the
block's end with its lhs unused anywhere — sinking it nowhere helps.
But ``a := c`` is *dead* and disappears under dead code elimination;
its removal unblocks ``y := a + b``, which then moves onto the
branches, dying where ``y`` is redefined.
"""

from __future__ import annotations

from .base import PaperFigure

FIGURE = PaperFigure(
    number="11",
    title="Eliminating a dead assignment enables further sinking",
    claim=(
        "the dead a := c disappears first; then y := a+b moves past the "
        "fork, is eliminated under the y := 7 redefinition and kept on "
        "the branch reaching out(y)"
    ),
    before_text="""
        graph
        block s -> 1
        block 1 { y := a + b; a := c } -> 2, 3
        block 2 { y := 7 } -> 4
        block 3 {} -> 4
        block 4 { out(y) } -> e
        block e
    """,
    expected_pde_text="""
        graph
        block s -> 1
        block 1 {} -> 2, 3
        block 2 { y := 7 } -> 4
        block 3 { y := a + b } -> 4
        block 4 { out(y) } -> e
        block e
    """,
)
