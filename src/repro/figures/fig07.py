"""Figure 7 — m-to-n sinkings.

Two occurrences of ``a := a + 1`` (nodes 1 and 2) are partially dead:
``a`` is needed only on the branch through node 5.  Eliminating either
occurrence alone is inadmissible — at the merge, the path through the
*other* predecessor would carry an unjustified insertion.  Only the
*simultaneous* treatment of both occurrences (which the bit-vector
delayability product performs for free) lets them fuse and move on:
two removals, one insertion, and the increment disappears entirely from
paths through node 4.

This is precisely the capability the paper says Feigen et al.'s revival
transformation [13] lacks (it places *one* occurrence at *one* later
point).
"""

from __future__ import annotations

from .base import PaperFigure

FIGURE = PaperFigure(
    number="7",
    title="Simultaneous sinking of several occurrences (m-to-n)",
    claim=(
        "both a := a+1 occurrences vanish from nodes 1 and 2; a single "
        "instance appears at the entry of node 5; paths through node 4 "
        "no longer execute the increment"
    ),
    before_text="""
        graph
        block s -> 1, 2
        block 1 { a := a + 1 } -> 3
        block 2 { out(a); a := a + 1 } -> 3
        block 3 {} -> 4, 5
        block 4 { out(x) } -> 6
        block 5 { out(a + b) } -> 6
        block 6 {} -> e
        block e
    """,
    expected_pde_text="""
        graph
        block s -> 1, 2
        block 1 {} -> 3
        block 2 { out(a) } -> 3
        block 3 {} -> 4, 5
        block 4 { out(x) } -> 6
        block 5 { a := a + 1; out(a + b) } -> 6
        block 6 {} -> e
        block e
    """,
)
