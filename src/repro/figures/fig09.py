"""Figure 9 — a faint but not dead assignment (taken from [18]).

``x := x + 1`` in a loop whose value never reaches a relevant statement
is not *dead* — its left-hand side is used, by itself, on the next
iteration — but it is *faint*: the using assignment's own lhs is faint.
Dead code elimination must keep it; faint code elimination removes it.

PDE still improves the program: the increment moves onto the back edge
(node ``S2_2``), so the final iteration's — provably useless — update
is no longer executed.  PFE removes the assignment outright.
"""

from __future__ import annotations

from .base import PaperFigure

FIGURE = PaperFigure(
    number="9",
    title="Faint code is out of reach for dead code elimination",
    claim=(
        "pde keeps x := x+1 (moved to the back edge, saving the last "
        "iteration's update); pfe eliminates it entirely"
    ),
    before_text="""
        graph
        block s -> 1
        block 1 {} -> 2
        block 2 { x := x + 1 } -> 2, 3
        block 3 { out(y) } -> e
        block e
    """,
    expected_pde_text="""
        graph
        block s -> 1
        block 1 {} -> 2
        block 2 {} -> S2_2, 3
        block 3 { out(y) } -> e
        block S2_2 { x := x + 1 } -> 2
        block e
    """,
    expected_pfe_text="""
        graph
        block s -> 1
        block 1 {} -> 2
        block 2 {} -> S2_2, 3
        block 3 { out(y) } -> e
        block S2_2 {} -> 2
        block e
    """,
)
