"""Figures 1 & 2 — the simple motivating example.

``y := a + b`` in node 1 is *partially dead*: dead on the branch that
redefines ``y`` (node 3), alive on the other.  Total dead code
elimination cannot touch it.  Moving the assignment to the entries of
the branch targets makes it (totally) dead where ``y`` is redefined, so
it can be removed there — the program of Figure 2.
"""

from __future__ import annotations

from .base import PaperFigure

FIGURE = PaperFigure(
    number="1-2",
    title="Partially dead assignment removed by sinking + elimination",
    claim=(
        "y := a+b moves from the fork onto the branch where y is used and "
        "disappears from the branch where y is redefined; the result is "
        "strictly better (Definition 3.6) than both the original and the "
        "best that total dead code elimination can do"
    ),
    before_text="""
        graph
        block s -> 1
        block 1 { y := a + b } -> 2, 3
        block 2 {} -> 4
        block 3 { y := 4 } -> 4
        block 4 { x := y + 3; out(x) } -> e
        block e
    """,
    expected_pde_text="""
        graph
        block s -> 1
        block 1 {} -> 2, 3
        block 2 { y := a + b } -> 4
        block 3 { y := 4 } -> 4
        block 4 { x := y + 3; out(x) } -> e
        block e
    """,
)
