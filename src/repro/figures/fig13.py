"""Figure 13 — sinking candidates of ``y := a + b`` within a basic block.

Sinking candidates are occurrences that are not *blocked*: neither
followed by a modification of an operand nor by a modification or usage
of the left-hand side.  Among several occurrences of a pattern in one
block at most the **last** can be a candidate — every occurrence blocks
its predecessors by modifying the lhs.

The figure shows three block variants; this module encodes them with
the expected candidate position of ``y := a + b`` in each.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..ir.builder import block_statements
from ..ir.stmts import Statement

__all__ = ["PANEL", "CandidatePanel"]


@dataclass(frozen=True)
class CandidatePanel:
    """One block variant with the expected candidate index."""

    label: str
    source: str
    #: expected index of the sinking candidate of ``y := a + b`` (None =
    #: blocked).
    expected_index: Optional[int]

    def statements(self) -> Tuple[Statement, ...]:
        return tuple(block_statements(self.source))


PANEL: Tuple[CandidatePanel, ...] = (
    CandidatePanel(
        label="blocked by operand modification",
        source="y := a + b; a := c; x := 3 * y",
        expected_index=None,
    ),
    CandidatePanel(
        label="last occurrence is the candidate",
        source="y := a + b; a := c; x := 3 * y; y := a + b",
        expected_index=3,
    ),
    CandidatePanel(
        label="blocked by a later operand modification",
        source="y := a + b; a := d",
        expected_index=None,
    ),
    CandidatePanel(
        label="unblocked single occurrence",
        source="x := 3; y := a + b",
        expected_index=1,
    ),
    CandidatePanel(
        label="blocked by a use of the lhs",
        source="y := a + b; out(y)",
        expected_index=None,
    ),
)
