"""repro — a reproduction of Knoop, Rüthing & Steffen,
"Partial Dead Code Elimination" (PLDI 1994).

Quickstart::

    from repro import parse_program, pde, format_side_by_side

    program = parse_program('''
        y := a + b;
        if ? { skip; } else { y := 4; }
        out(y);
    ''')
    result = pde(program)
    print(format_side_by_side(result.original, result.graph))

The package layout mirrors the paper:

* :mod:`repro.ir` — flow graphs ``G = (N, E, s, e)`` (Section 2),
* :mod:`repro.dataflow` — the analyses of Tables 1 and 2,
* :mod:`repro.core` — the ``pde`` / ``pfe`` algorithm (Section 5) and the
  optimality criterion (Definition 3.6),
* :mod:`repro.baselines` — comparison algorithms from related work,
* :mod:`repro.lcm` — lazy code motion (the dual transformation, [22, 23]),
* :mod:`repro.interp` — the reference interpreter (semantics oracle),
* :mod:`repro.figures` — the paper's Figures 1–13 as program pairs,
* :mod:`repro.workloads` — random program generators for the Section 6
  complexity study.
"""

from .core import (
    OptimizationResult,
    OptimizationStats,
    compare,
    dead_code_elimination,
    faint_code_elimination,
    is_better_or_equal,
    optimize,
    pde,
    pfe,
)
from .ir import (
    FlowGraph,
    GraphBuilder,
    format_graph,
    format_side_by_side,
    parse_program,
    split_critical_edges,
    to_dot,
)
from .interp import DecisionSequence, execute

__version__ = "1.0.0"

__all__ = [
    "OptimizationResult",
    "OptimizationStats",
    "compare",
    "dead_code_elimination",
    "faint_code_elimination",
    "is_better_or_equal",
    "optimize",
    "pde",
    "pfe",
    "FlowGraph",
    "GraphBuilder",
    "format_graph",
    "format_side_by_side",
    "parse_program",
    "split_critical_edges",
    "to_dot",
    "DecisionSequence",
    "execute",
    "__version__",
]
