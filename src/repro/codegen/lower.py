"""Lowering flow graphs to bytecode.

Blocks are laid out in a depth-first order from the start node;
fall-through edges need no jump, everything else gets ``JMP``/``JZ``/
``CHOOSE``.  Expressions lower to three-address code with fresh
temporaries (``$tN``); variables keep their names as registers.

Branch lowering mirrors the interpreter's semantics exactly:

* a block ending in ``branch c`` emits ``JZ c-register, <second
  successor>`` and falls through / jumps to the first;
* a two-way block *without* a condition is the paper's nondeterministic
  branch: ``CHOOSE <second successor>`` consults the VM's decision
  oracle, taking the first successor on 0 — so the same
  :class:`~repro.interp.interpreter.DecisionSequence` drives source
  interpretation and bytecode execution, and the two must agree
  output-for-output (the differential tests assert this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..ir.cfg import FlowGraph
from ..ir.exprs import BinOp, Const, Expr, UnaryOp, Var
from ..ir.stmts import Assign, Branch, Out, Skip
from .isa import Instruction

__all__ = ["BytecodeProgram", "lower"]

_BINOPS = {
    "+": "ADD",
    "-": "SUB",
    "*": "MUL",
    "/": "DIV",
    "%": "MOD",
    "<": "CMPLT",
    "<=": "CMPLE",
    ">": "CMPGT",
    ">=": "CMPGE",
    "==": "CMPEQ",
    "!=": "CMPNE",
}


@dataclass
class BytecodeProgram:
    """A lowered program: instructions plus layout metadata."""

    instructions: List[Instruction] = field(default_factory=list)
    #: First instruction index of each source block.
    block_offsets: Dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)


class _Lowering:
    def __init__(self, graph: FlowGraph) -> None:
        self.graph = graph
        self.program = BytecodeProgram()
        self._temp_counter = 0
        self._fixups: List[Tuple[int, str]] = []  # (instruction idx, block)
        #: (instruction idx, operand position, block) for SELECT tables.
        self._table_fixups: List[Tuple[int, int, str]] = []

    def fresh_temp(self) -> str:
        self._temp_counter += 1
        return f"$t{self._temp_counter}"

    def emit(self, opcode: str, *operands, block: str) -> int:
        self.program.instructions.append(
            Instruction(opcode, tuple(operands), source_block=block)
        )
        return len(self.program.instructions) - 1

    # -- expressions -------------------------------------------------
    def lower_expr(self, expr: Expr, block: str) -> str:
        """Lower ``expr``; returns the register holding its value."""
        if isinstance(expr, Var):
            return expr.name
        if isinstance(expr, Const):
            temp = self.fresh_temp()
            self.emit("LOADI", temp, expr.value, block=block)
            return temp
        if isinstance(expr, UnaryOp):
            source = self.lower_expr(expr.operand, block)
            temp = self.fresh_temp()
            self.emit("NEG" if expr.op == "-" else "NOT", temp, source, block=block)
            return temp
        if isinstance(expr, BinOp):
            lhs = self.lower_expr(expr.left, block)
            rhs = self.lower_expr(expr.right, block)
            temp = self.fresh_temp()
            self.emit(_BINOPS[expr.op], temp, lhs, rhs, block=block)
            return temp
        raise TypeError(f"cannot lower {expr!r}")

    # -- blocks ------------------------------------------------------
    def lower_block(self, name: str, layout_next: str | None) -> None:
        self.program.block_offsets[name] = len(self.program.instructions)
        statements = self.graph.statements(name)
        branch_cond: str | None = None
        for stmt in statements:
            if isinstance(stmt, Assign):
                value = self.lower_expr(stmt.rhs, name)
                self.emit("MOV", stmt.lhs, value, block=name)
            elif isinstance(stmt, Out):
                value = self.lower_expr(stmt.expr, name)
                self.emit("OUT", value, block=name)
            elif isinstance(stmt, Branch):
                branch_cond = self.lower_expr(stmt.cond, name)
            elif isinstance(stmt, Skip):
                pass

        successors = self.graph.successors(name)
        if not successors:
            self.emit("HALT", block=name)
            return
        if len(successors) == 1:
            if successors[0] != layout_next:
                index = self.emit("JMP", 0, block=name)
                self._fixups.append((index, successors[0]))
            return
        if len(successors) > 2:
            # n-way nondeterministic branch: a jump table consuming one
            # oracle decision modulo n, exactly like the interpreter.
            index = self.emit("SELECT", *([0] * len(successors)), block=name)
            for position, target in enumerate(successors):
                self._table_fixups.append((index, position, target))
            return
        first, second = successors
        if branch_cond is not None:
            # branch c: c != 0 → first successor, else second.
            index = self.emit("JZ", branch_cond, 0, block=name)
            self._fixups.append((index, second))
        else:
            index = self.emit("CHOOSE", 0, block=name)
            self._fixups.append((index, second))
        if first != layout_next:
            index = self.emit("JMP", 0, block=name)
            self._fixups.append((index, first))

    def run(self) -> BytecodeProgram:
        # Depth-first layout from the start node; unreached blocks are
        # appended (validated graphs have none).
        order: List[str] = []
        seen = set()
        stack = [self.graph.start]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            order.append(node)
            stack.extend(reversed(self.graph.successors(node)))
        for node in self.graph.nodes():
            if node not in seen:
                order.append(node)

        for position, name in enumerate(order):
            layout_next = order[position + 1] if position + 1 < len(order) else None
            self.lower_block(name, layout_next)

        # Resolve branch targets.
        for index, target_block in self._fixups:
            target = self.program.block_offsets[target_block]
            instruction = self.program.instructions[index]
            operands = list(instruction.operands)
            operands[-1] = target
            self.program.instructions[index] = Instruction(
                instruction.opcode, tuple(operands), instruction.source_block
            )
        for index, position, target_block in self._table_fixups:
            target = self.program.block_offsets[target_block]
            instruction = self.program.instructions[index]
            operands = list(instruction.operands)
            operands[position] = target
            self.program.instructions[index] = Instruction(
                instruction.opcode, tuple(operands), instruction.source_block
            )
        return self.program


def lower(graph: FlowGraph) -> BytecodeProgram:
    """Compile ``graph`` to bytecode."""
    return _Lowering(graph).run()
