"""The bytecode virtual machine.

Executes :class:`~repro.codegen.lower.BytecodeProgram` under the same
decision oracle as the source-level interpreter, recording the dynamic
measurements the evaluation layer wants:

* executed instruction count, total and per opcode,
* the ``OUT`` value sequence (observable semantics),
* trap information (division by zero — footnote 3's error model).

Differential testing pins the whole pipeline: for any program, source
interpretation and compiled execution under the same decisions must
produce identical outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..interp.interpreter import DecisionSequence, InterpreterError
from .lower import BytecodeProgram

__all__ = ["VMRun", "run_bytecode"]


@dataclass
class VMRun:
    """Observable outcome of one bytecode execution."""

    outputs: List[int] = field(default_factory=list)
    registers: Dict[str, int] = field(default_factory=dict)
    executed: int = 0
    per_opcode: Dict[str, int] = field(default_factory=dict)
    trap: Optional[str] = None

    def observable(self):
        return (tuple(self.outputs), self.trap)


def run_bytecode(
    program: BytecodeProgram,
    env: Optional[Dict[str, int]] = None,
    decisions: Optional[DecisionSequence] = None,
    max_steps: int = 100_000,
) -> VMRun:
    """Execute ``program`` from instruction 0 until ``HALT``."""
    run = VMRun(registers=dict(env) if env else {})
    registers = run.registers

    def read(name: str) -> int:
        return registers.get(name, 0)

    pc = 0
    instructions = program.instructions
    while True:
        if run.executed >= max_steps:
            raise InterpreterError(f"exceeded {max_steps} executed instructions")
        if pc < 0 or pc >= len(instructions):
            raise InterpreterError(f"program counter {pc} out of range")
        instruction = instructions[pc]
        run.executed += 1
        run.per_opcode[instruction.opcode] = (
            run.per_opcode.get(instruction.opcode, 0) + 1
        )
        opcode = instruction.opcode
        ops = instruction.operands
        pc += 1

        if opcode == "LOADI":
            registers[ops[0]] = ops[1]
        elif opcode == "MOV":
            registers[ops[0]] = read(ops[1])
        elif opcode in ("ADD", "SUB", "MUL"):
            lhs, rhs = read(ops[1]), read(ops[2])
            if opcode == "ADD":
                registers[ops[0]] = lhs + rhs
            elif opcode == "SUB":
                registers[ops[0]] = lhs - rhs
            else:
                registers[ops[0]] = lhs * rhs
        elif opcode in ("DIV", "MOD"):
            lhs, rhs = read(ops[1]), read(ops[2])
            if rhs == 0:
                run.trap = "division by zero" if opcode == "DIV" else "modulo by zero"
                return run
            quotient = int(lhs / rhs)  # truncating, as in the source language
            registers[ops[0]] = quotient if opcode == "DIV" else lhs - quotient * rhs
        elif opcode == "NEG":
            registers[ops[0]] = -read(ops[1])
        elif opcode == "NOT":
            registers[ops[0]] = int(read(ops[1]) == 0)
        elif opcode.startswith("CMP"):
            lhs, rhs = read(ops[1]), read(ops[2])
            registers[ops[0]] = int(
                {
                    "CMPLT": lhs < rhs,
                    "CMPLE": lhs <= rhs,
                    "CMPGT": lhs > rhs,
                    "CMPGE": lhs >= rhs,
                    "CMPEQ": lhs == rhs,
                    "CMPNE": lhs != rhs,
                }[opcode]
            )
        elif opcode == "JMP":
            pc = ops[0]
        elif opcode == "JZ":
            if read(ops[0]) == 0:
                pc = ops[1]
        elif opcode == "CHOOSE":
            if decisions is None:
                raise InterpreterError("CHOOSE without a decision oracle")
            if decisions.next_decision(2):
                pc = ops[0]
        elif opcode == "SELECT":
            if decisions is None:
                raise InterpreterError("SELECT without a decision oracle")
            pc = ops[decisions.next_decision(len(ops))]
        elif opcode == "OUT":
            run.outputs.append(read(ops[0]))
        elif opcode == "HALT":
            return run
        else:  # pragma: no cover — the ISA is closed
            raise InterpreterError(f"unimplemented opcode {opcode}")
