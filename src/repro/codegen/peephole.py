"""Peephole optimisation of lowered bytecode.

Naive three-address lowering produces ``<op> $tN, …; MOV x, $tN`` pairs
— one copy per assignment.  Two classic, obviously-safe rewrites clean
most of it up:

* **copy coalescing** — when a ``$t`` temporary is defined by one
  instruction, consumed by the immediately following ``MOV``, and never
  mentioned anywhere else, the definition writes the ``MOV``'s target
  directly and the ``MOV`` disappears;
* **self-move removal** — ``MOV x, x`` disappears.

Deletions re-index every jump target and block offset through an
old→new map, and a fusion is refused when the ``MOV`` is itself a jump
target (fusing across a label would change what the jump lands on).
Behaviour is differentially tested against the unpeepholed program.
"""

from __future__ import annotations

from typing import Dict, List, Set

from .isa import Instruction, OPCODES
from .lower import BytecodeProgram

__all__ = ["peephole"]

_TARGET_POSITIONS = {
    "JMP": (0,),
    "JZ": (1,),
    "CHOOSE": (0,),
}


def _target_positions(instruction: Instruction):
    if instruction.opcode == "SELECT":
        return tuple(range(len(instruction.operands)))
    return _TARGET_POSITIONS.get(instruction.opcode, ())


def _defines_temp(instruction: Instruction) -> str | None:
    """The ``$t`` register this instruction writes, if any."""
    shape = OPCODES[instruction.opcode]
    if not shape or shape[0] != "r" or instruction.opcode in ("OUT", "JZ"):
        return None
    destination = instruction.operands[0]
    if isinstance(destination, str) and destination.startswith("$t"):
        return destination
    return None


def peephole(program: BytecodeProgram) -> BytecodeProgram:
    """A peepholed copy of ``program``."""
    old = list(program.instructions)

    mention_count: Dict[str, int] = {}
    for instruction in old:
        for operand, kind in zip(instruction.operands, OPCODES[instruction.opcode]):
            if kind == "r" and isinstance(operand, str) and operand.startswith("$t"):
                mention_count[operand] = mention_count.get(operand, 0) + 1

    jump_targets: Set[int] = set()
    for instruction in old:
        for position in _target_positions(instruction):
            jump_targets.add(instruction.operands[position])

    new: List[Instruction] = []
    old_to_new: Dict[int, int] = {}
    index = 0
    while index < len(old):
        old_to_new[index] = len(new)
        instruction = old[index]

        # Self-move removal (never fusable, check first).
        if (
            instruction.opcode == "MOV"
            and instruction.operands[0] == instruction.operands[1]
        ):
            index += 1
            continue

        # Copy coalescing with the immediately following MOV.
        temp = _defines_temp(instruction)
        if (
            temp is not None
            and mention_count.get(temp, 0) == 2
            and index + 1 < len(old)
            and old[index + 1].opcode == "MOV"
            and old[index + 1].operands[1] == temp
            and (index + 1) not in jump_targets
        ):
            mov = old[index + 1]
            old_to_new[index + 1] = len(new)
            new.append(
                Instruction(
                    instruction.opcode,
                    (mov.operands[0],) + instruction.operands[1:],
                    instruction.source_block,
                )
            )
            index += 2
            continue

        new.append(instruction)
        index += 1
    old_to_new[len(old)] = len(new)

    def retarget(target: int) -> int:
        return old_to_new[target]

    for position_in_new, instruction in enumerate(new):
        positions = _target_positions(instruction)
        if not positions:
            continue
        operands = list(instruction.operands)
        for position in positions:
            operands[position] = retarget(operands[position])
        new[position_in_new] = Instruction(
            instruction.opcode, tuple(operands), instruction.source_block
        )

    result = BytecodeProgram(instructions=new)
    for block, offset in program.block_offsets.items():
        result.block_offsets[block] = retarget(offset)
    return result
