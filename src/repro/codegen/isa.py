"""A small register-machine instruction set.

The paper's transformations live on flow graphs; a real compiler then
lowers the optimised graph to machine code.  This tiny ISA closes that
loop: flow graphs compile to linear bytecode
(:mod:`repro.codegen.lower`) executed by a VM (:mod:`repro.codegen.vm`),
so the effect of partial dead code elimination can be measured in
*executed machine instructions* rather than source statements.

Instructions (three-address, unlimited virtual registers):

========  ============================  =====================================
opcode    operands                      meaning
========  ============================  =====================================
LOADI     dst, imm                      dst ← imm
MOV       dst, src                      dst ← src
ADD/SUB/  dst, lhs, rhs                 dst ← lhs op rhs (division and
MUL/DIV/                                 modulo trap on zero, truncating)
MOD
NEG/NOT   dst, src                      dst ← -src / (src == 0)
CMP<op>   dst, lhs, rhs                 dst ← lhs <op> rhs (0/1); op ∈
                                         {LT, LE, GT, GE, EQ, NE}
JMP       target                        unconditional branch
JZ        src, target                   branch when src == 0
CHOOSE    target                        nondeterministic two-way branch:
                                         consult the decision oracle; fall
                                         through on 0, jump on 1
OUT       src                           emit the value of src
HALT      —                             stop
========  ============================  =====================================

Registers are named strings (virtual registers carry their source
variable names, temporaries are ``$tN``), keeping the bytecode
readable and the lowering honest — no register allocator is pretended.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["Instruction", "OPCODES", "format_instruction", "format_listing"]

#: All opcodes with their operand shapes (``r`` register, ``i``
#: immediate, ``l`` label/target).
OPCODES = {
    "LOADI": ("r", "i"),
    "MOV": ("r", "r"),
    "ADD": ("r", "r", "r"),
    "SUB": ("r", "r", "r"),
    "MUL": ("r", "r", "r"),
    "DIV": ("r", "r", "r"),
    "MOD": ("r", "r", "r"),
    "NEG": ("r", "r"),
    "NOT": ("r", "r"),
    "CMPLT": ("r", "r", "r"),
    "CMPLE": ("r", "r", "r"),
    "CMPGT": ("r", "r", "r"),
    "CMPGE": ("r", "r", "r"),
    "CMPEQ": ("r", "r", "r"),
    "CMPNE": ("r", "r", "r"),
    "JMP": ("l",),
    "JZ": ("r", "l"),
    "CHOOSE": ("l",),
    "SELECT": ("l*",),  # n-way nondeterministic jump table (n ≥ 3)
    "OUT": ("r",),
    "HALT": (),
}


@dataclass(frozen=True)
class Instruction:
    """One bytecode instruction."""

    opcode: str
    operands: Tuple = ()
    #: Source block this instruction was lowered from (diagnostics).
    source_block: Optional[str] = None

    def __post_init__(self) -> None:
        if self.opcode not in OPCODES:
            raise ValueError(f"unknown opcode {self.opcode!r}")
        shape = OPCODES[self.opcode]
        if shape and shape[-1] == "l*":
            if len(self.operands) < 3:
                raise ValueError(f"{self.opcode} expects at least 3 targets")
        elif len(shape) != len(self.operands):
            raise ValueError(
                f"{self.opcode} expects {len(shape)} operand(s), "
                f"got {len(self.operands)}"
            )

    def __str__(self) -> str:
        rendered = ", ".join(str(op) for op in self.operands)
        return f"{self.opcode} {rendered}".rstrip()


def format_instruction(index: int, instruction: Instruction) -> str:
    origin = f"  ; {instruction.source_block}" if instruction.source_block else ""
    return f"{index:4}: {instruction}{origin}"


def format_listing(program) -> str:
    """A human-readable listing of a bytecode program."""
    return "\n".join(
        format_instruction(index, instruction)
        for index, instruction in enumerate(program)
    )
