"""Bytecode backend: lower optimised flow graphs to a small register
machine and execute them — the optimisation measured in executed
machine instructions."""

from .isa import Instruction, OPCODES, format_listing
from .lower import BytecodeProgram, lower
from .peephole import peephole
from .vm import VMRun, run_bytecode

__all__ = [
    "Instruction",
    "OPCODES",
    "format_listing",
    "BytecodeProgram",
    "lower",
    "peephole",
    "VMRun",
    "run_bytecode",
]
