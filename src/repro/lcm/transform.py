"""The lazy code motion transformation.

Given the solved :class:`~repro.lcm.analyses.LCMAnalyses`, insert
``h := t`` on every edge with ``INSERT`` and rewrite the first (locally
anticipable) computation ``x := t`` of every block with ``DELETE`` into
``x := h`` — eliminating partial redundancies while keeping temporary
lifetimes minimal.

Edge insertions require the graph to be critical-edge-free: an insertion
on ``(i, j)`` lands at the end of ``i`` when ``i`` has one successor,
else at the beginning of ``j`` (which then has one predecessor).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..ir.cfg import FlowGraph
from ..ir.exprs import Var
from ..ir.splitting import split_critical_edges
from ..ir.stmts import Assign
from .analyses import LCMAnalyses, analyze_lcm

__all__ = ["LCMResult", "lazy_code_motion"]


@dataclass
class LCMResult:
    """Outcome of one LCM run."""

    original: FlowGraph
    graph: FlowGraph
    analyses: LCMAnalyses
    #: temp name per rewritten expression key.
    temporaries: Dict[str, str] = field(default_factory=dict)
    #: ``(edge, expression)`` insertions performed.
    insertions: List[Tuple[Tuple[str, str], str]] = field(default_factory=list)
    #: ``(block, index, expression)`` computations rewritten to the temp.
    rewrites: List[Tuple[str, int, str]] = field(default_factory=list)


def _fresh_temp(taken: set, index: int) -> str:
    name = f"h{index}"
    while name in taken:
        name = f"{name}_"
    taken.add(name)
    return name


def lazy_code_motion(graph: FlowGraph, split_edges: bool = True) -> LCMResult:
    """Run lazy code motion on ``graph`` and return the transformed copy."""
    original = split_critical_edges(graph) if split_edges else graph.copy()
    work = original.copy()
    analyses = analyze_lcm(work)
    universe = analyses.expressions.universe

    taken = set(work.variables())
    temporaries: Dict[str, str] = {}

    def temp_for(key: str) -> str:
        if key not in temporaries:
            temporaries[key] = _fresh_temp(taken, universe.index(key))
        return temporaries[key]

    # A coarse rendering of the LCM papers' "isolated" treatment: only
    # expressions that actually participate in the motion — some INSERT
    # on an edge or some DELETE in a block — get a temporary; everything
    # else keeps its original form untouched.
    active = 0
    for edge in work.edges():
        active |= analyses.insert(edge)
    for node in work.nodes():
        active |= analyses.delete(node)

    result = LCMResult(
        original=original, graph=work, analyses=analyses, temporaries=temporaries
    )

    # Collect edge insertions first (analyses refer to the pre-image).
    pending_front: Dict[str, List[Assign]] = {}
    pending_back: Dict[str, List[Assign]] = {}
    for edge in work.edges():
        vector = analyses.insert(edge)
        if not vector:
            continue
        i, j = edge
        for key in universe.members(vector):
            stmt = Assign(temp_for(key), analyses.expressions.expr(key))
            if len(work.successors(i)) == 1:
                pending_back.setdefault(i, []).append(stmt)
            elif len(work.predecessors(j)) == 1:
                pending_front.setdefault(j, []).append(stmt)
            else:
                raise AssertionError(
                    f"insertion on critical edge ({i!r}, {j!r}) — split first"
                )
            result.insertions.append((edge, key))

    # Rewrite computations.  A deleted occurrence (the first locally
    # anticipable one of a DELETE block) becomes a read of the temp:
    # ``x := h``.  Every other occurrence is split into ``h := t; x := h``
    # so the temp is defined wherever the original computed the value —
    # downstream deleted occurrences may rely on it via availability.
    for node in work.nodes():
        statements = list(work.statements(node))
        if not any(
            isinstance(stmt, Assign)
            and str(stmt.rhs) in universe
            and active & universe.bit(str(stmt.rhs))
            for stmt in statements
        ):
            continue
        deletable = analyses.delete(node)
        rewritten: List[Assign] = []
        for index, stmt in enumerate(statements):
            if (
                isinstance(stmt, Assign)
                and str(stmt.rhs) in universe
                and active & universe.bit(str(stmt.rhs))
            ):
                key = str(stmt.rhs)
                temp = temp_for(key)
                if deletable & universe.bit(key):
                    rewritten.append(Assign(stmt.lhs, Var(temp)))
                    result.rewrites.append((node, index, key))
                    deletable &= ~universe.bit(key)
                else:
                    rewritten.append(Assign(temp, stmt.rhs))
                    rewritten.append(Assign(stmt.lhs, Var(temp)))
            else:
                rewritten.append(stmt)
            modified = stmt.modified()
            if modified is not None:
                # Occurrences after an operand modification are not the
                # locally anticipated ones; they may not be deleted.
                for key in universe.members(deletable):
                    if modified in analyses.expressions.expr(key).variables():
                        deletable &= ~universe.bit(key)
        work.set_statements(node, rewritten)

    for node, stmts in pending_front.items():
        work.set_statements(node, stmts + list(work.statements(node)))
    for node, stmts in pending_back.items():
        work.set_statements(node, list(work.statements(node)) + stmts)
    return result


def expression_computation_count(graph: FlowGraph, key: str) -> int:
    """Static occurrence count of expression ``key`` as an assignment rhs."""
    count = 0
    for _node, _index, stmt in graph.assignments():
        if str(stmt.rhs) == key:
            count += 1
    return count
