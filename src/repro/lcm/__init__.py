"""Lazy code motion — partial redundancy elimination, the dual of PDE."""

from .analyses import ExpressionUniverse, LCMAnalyses, analyze_lcm
from .transform import LCMResult, expression_computation_count, lazy_code_motion

__all__ = [
    "ExpressionUniverse",
    "LCMAnalyses",
    "analyze_lcm",
    "LCMResult",
    "expression_computation_count",
    "lazy_code_motion",
]
