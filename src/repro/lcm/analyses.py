"""Lazy code motion analyses ([22, 23]; edge-placement formulation).

Partial dead code elimination is "essentially dual to partial redundancy
elimination … where computations are moved against the control flow as
far as possible" (paper Section 1), and its delayability analysis is
adapted from LCM's.  We implement LCM both as a worthwhile extension in
its own right and to reproduce the related-work claim about Briggs' and
Cooper's sinking: an assignment naively sunk *into* a loop cannot be
hoisted back out by a subsequent partial redundancy elimination, because
hoisting past the loop exit would not be down-safe.

The formulation is the edge-based one of Drechsler/Stadel [12] (a
variation of Knoop/Rüthing/Steffen's LCM), over the universe of
non-trivial right-hand side expressions:

* ``ANTIN/ANTOUT`` — down-safety (anticipability), backward, all-paths;
* ``AVIN/AVOUT``  — availability, forward, all-paths;
* ``earliest(i,j) = ANTIN_j · ¬AVOUT_i · (¬TRANSP_i + ¬ANTOUT_i)``;
* ``later`` / ``LATERIN`` — delaying insertions as far as possible
  (the analysis the paper's Table 2 adapts);
* ``INSERT(i,j) = later(i,j) · ¬LATERIN_j``;
* ``DELETE(k) = ANTLOC_k · ¬LATERIN_k``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..ir.cfg import FlowGraph
from ..ir.exprs import BinOp, Expr, UnaryOp
from ..ir.stmts import Assign
from ..dataflow.bitvec import Universe
from ..dataflow.framework import BACKWARD, FORWARD, Analysis, solve

__all__ = ["ExpressionUniverse", "LCMAnalyses", "analyze_lcm"]

Edge = Tuple[str, str]


class ExpressionUniverse:
    """The candidate expressions of a program: non-trivial assignment rhs."""

    def __init__(self, graph: FlowGraph) -> None:
        expressions: Dict[str, Expr] = {}
        for _node, _index, stmt in graph.assignments():
            if isinstance(stmt.rhs, (BinOp, UnaryOp)):
                expressions.setdefault(str(stmt.rhs), stmt.rhs)
        self._expressions = {key: expressions[key] for key in sorted(expressions)}
        self.universe = Universe(self._expressions)

    def __len__(self) -> int:
        return len(self._expressions)

    def __iter__(self):
        return iter(self._expressions.items())

    def expr(self, key: str) -> Expr:
        return self._expressions[key]

    def keys(self) -> Tuple[str, ...]:
        return tuple(self._expressions)


def _local_predicates(
    graph: FlowGraph, expressions: ExpressionUniverse, node: str
) -> Tuple[int, int, int]:
    """``(ANTLOC_n, COMP_n, TRANSP_n)`` for block ``node``.

    * ``ANTLOC`` — computed in ``n`` before any operand modification;
    * ``COMP``   — computed in ``n`` with no operand modification after
      the last computation (locally available at exit);
    * ``TRANSP`` — no statement of ``n`` modifies an operand.
    """
    universe = expressions.universe
    antloc = 0
    comp = 0
    transp = universe.full
    killed_so_far = 0  # expressions with an operand modified so far
    for stmt in graph.statements(node):
        if isinstance(stmt, Assign) and isinstance(stmt.rhs, (BinOp, UnaryOp)):
            bit = universe.bit(str(stmt.rhs))
            if not killed_so_far & bit:
                antloc |= bit
            comp |= bit
        modified = stmt.modified()
        if modified is not None:
            killed = 0
            for key, expr in expressions:
                if modified in expr.variables():
                    killed |= universe.bit(key)
            killed_so_far |= killed
            transp &= ~killed
            comp &= ~killed
    return antloc, comp, transp


class _Anticipability(Analysis):
    direction = BACKWARD

    def __init__(self, graph, universe, locals_):
        super().__init__(graph, universe)
        self._locals = locals_

    def boundary(self) -> int:
        return 0  # nothing is anticipated past e

    def transfer(self, node: str, ant_out: int) -> int:
        antloc, _comp, transp = self._locals[node]
        return antloc | (ant_out & transp)


class _Availability(Analysis):
    direction = FORWARD

    def __init__(self, graph, universe, locals_):
        super().__init__(graph, universe)
        self._locals = locals_

    def boundary(self) -> int:
        return 0  # nothing is available before s

    def transfer(self, node: str, av_in: int) -> int:
        _antloc, comp, transp = self._locals[node]
        return comp | (av_in & transp)


@dataclass
class LCMAnalyses:
    """All solved LCM predicates for one program."""

    graph: FlowGraph
    expressions: ExpressionUniverse
    locals: Dict[str, Tuple[int, int, int]]  # (ANTLOC, COMP, TRANSP)
    ant_in: Dict[str, int]
    ant_out: Dict[str, int]
    av_in: Dict[str, int]
    av_out: Dict[str, int]
    later_in: Dict[str, int]
    later: Dict[Edge, int]

    def earliest(self, edge: Edge) -> int:
        i, j = edge
        _antloc_i, _comp_i, transp_i = self.locals[i]
        full = self.expressions.universe.full
        value = self.ant_in[j] & ~self.av_out[i]
        if i != self.graph.start:
            # No placement can move above s, so the "cannot move earlier"
            # factor is dropped on entry edges.
            value &= (full & ~transp_i) | (full & ~self.ant_out[i])
        return value

    def insert(self, edge: Edge) -> int:
        _i, j = edge
        return self.later[edge] & ~self.later_in[j] & self.expressions.universe.full

    def delete(self, node: str) -> int:
        if node == self.graph.start:
            return 0
        antloc, _comp, _transp = self.locals[node]
        return antloc & ~self.later_in[node]


def analyze_lcm(graph: FlowGraph) -> LCMAnalyses:
    """Run the four LCM analyses over ``graph`` (must be edge-split)."""
    expressions = ExpressionUniverse(graph)
    universe = expressions.universe
    locals_ = {node: _local_predicates(graph, expressions, node) for node in graph.nodes()}

    ant = solve(_Anticipability(graph, universe, locals_))
    av = solve(_Availability(graph, universe, locals_))

    analyses = LCMAnalyses(
        graph=graph,
        expressions=expressions,
        locals=locals_,
        ant_in=ant.entry,
        ant_out=ant.exit,
        av_in=av.entry,
        av_out=av.exit,
        later_in={},
        later={},
    )

    # Later / LaterIn: a forward all-paths system over edges.
    full = universe.full
    later_in: Dict[str, int] = {node: full for node in graph.nodes()}
    later_in[graph.start] = 0
    later: Dict[Edge, int] = {}
    for edge in graph.edges():
        later[edge] = full

    changed = True
    while changed:
        changed = False
        for node in graph.nodes():
            antloc_i, _comp, _transp = locals_[node]
            for successor in graph.successors(node):
                edge = (node, successor)
                value = analyses.earliest(edge) | (later_in[node] & ~antloc_i)
                if value != later[edge]:
                    later[edge] = value
                    changed = True
        for node in graph.nodes():
            if node == graph.start:
                continue
            preds = graph.predecessors(node)
            if not preds:
                continue
            value = full
            for pred in preds:
                value &= later[(pred, node)]
            if value != later_in[node]:
                later_in[node] = value
                changed = True

    analyses.later_in = later_in
    analyses.later = later
    return analyses
