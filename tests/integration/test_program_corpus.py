"""Integration tests over the realistic program corpus
(``examples/programs/*.pde``): the full pipeline on every program, with
every oracle."""

import pathlib

import pytest

from repro.codegen import lower, peephole, run_bytecode
from repro.core import pde
from repro.core.verify import verified_pde
from repro.interp import DecisionSequence, InterpreterError
from repro.ir.parser import parse_program
from repro.ir.validate import validate

from ..helpers import assert_semantics_preserved

CORPUS_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples" / "programs"
PROGRAMS = sorted(CORPUS_DIR.glob("*.pde"))


def load(path: pathlib.Path):
    return parse_program(path.read_text())


@pytest.mark.parametrize("path", PROGRAMS, ids=[p.stem for p in PROGRAMS])
class TestCorpus:
    def test_parses_and_validates(self, path):
        validate(load(path), strict=True)

    def test_verified_pde(self, path):
        result = verified_pde(load(path))
        assert result.verification is not None

    def test_machine_cost_never_regresses(self, path):
        import random

        result = pde(load(path))
        before = lower(result.original)
        after = peephole(lower(result.graph))
        rng = random.Random(42)
        compared = 0
        for _ in range(8):
            decisions = [rng.randint(0, 5) for _ in range(200)]
            env = {v: rng.randint(1, 5) for v in result.original.variables()}
            try:
                base = run_bytecode(
                    before, dict(env), DecisionSequence(list(decisions)), max_steps=50000
                )
                new = run_bytecode(
                    after, dict(env), DecisionSequence(list(decisions)), max_steps=50000
                )
            except InterpreterError:
                continue
            if base.trap is not None:
                continue
            assert new.outputs == base.outputs
            assert new.executed <= base.executed
            compared += 1
        assert compared > 0

    def test_semantics_after_full_pipeline(self, path):
        result = pde(load(path))
        assert_semantics_preserved(result.original, result.graph, seeds=range(6))


class TestCorpusSpecifics:
    def _optimise(self, name):
        return pde(load(CORPUS_DIR / name))

    def test_gcd_trace_leaves_the_quiet_path(self):
        result = self._optimise("gcd.pde")
        counts = [
            stmt.pattern()
            for _n, _i, stmt in result.graph.assignments()
            if stmt.lhs == "trace"
        ]
        assert len(counts) == 1
        # trace's computation now sits on the verbose branch only:
        # find its block and check it also outputs.
        block = next(
            node
            for node, _i, stmt in result.graph.assignments()
            if stmt.lhs == "trace"
        )
        texts = [str(s) for s in result.graph.statements(block)]
        assert any(t.startswith("out(") for t in texts)

    def test_horner_error_chain_leaves_the_fast_path(self):
        result = self._optimise("horner.pde")
        homes = {}
        for lhs in ("err1", "err2", "bound"):
            blocks = [
                node
                for node, _i, stmt in result.graph.assignments()
                if stmt.lhs == lhs
            ]
            assert len(blocks) == 1, lhs
            homes[lhs] = blocks[0]
        # The whole chain consolidated into one (checking) block.
        assert len(set(homes.values())) == 1, homes

    def test_globals_store_survives(self, ):
        result = self._optimise("globals_io.pde")
        assignments = [
            stmt.pattern()
            for _n, _i, stmt in result.graph.assignments()
            if stmt.lhs == "device"
        ]
        assert assignments  # the external store is still there

    def test_state_machine_digest_moves_to_audit(self):
        result = self._optimise("state_machine.pde")
        audit = [str(s) for s in result.graph.statements("audit")]
        assert any("digest :=" in t for t in audit)
        connect = [str(s) for s in result.graph.statements("connect")]
        assert not any("digest" in t for t in connect)
