"""Integration test for paper footnote 1.

"Note that even interleaving code motion and copy propagation as
suggested in [10] only succeeds in removing the right hand side
computations from the loop, but the assignment to x would remain in it."

We iterate (lazy code motion; copy propagation; dce) to a fixpoint on a
loop whose invariant assignment's target merges with another definition
before its use — the copy can then not be propagated out of the loop,
and the assignment stays; PDE empties the loop.
"""

from repro.core import pde
from repro.core.eliminate import dead_code_elimination
from repro.ir.parser import parse_program
from repro.lcm import lazy_code_motion
from repro.passes import copy_propagation

from ..helpers import assert_semantics_preserved

SRC = """
graph
block s -> 0
block 0 -> 1, 9
block 1 {} -> 2
block 2 { x := a + b } -> 3
block 3 {} -> 2, 7
block 9 { x := 5 } -> 7
block 7 { out(x) } -> e
block e
"""

LOOP_BLOCKS = ("2", "3", "S3_2")


def interleave_lcm_copyprop(graph, rounds=8):
    result = lazy_code_motion(graph)
    work = result.graph
    for _ in range(rounds):
        changed = copy_propagation(work).changed
        changed |= dead_code_elimination(work).changed
        again = lazy_code_motion(work, split_edges=False)
        if again.graph == work and not changed:
            break
        work = again.graph
    return result.original, work


class TestFootnote1:
    def test_lcm_plus_copyprop_leaves_the_assignment_in_the_loop(self):
        original, work = interleave_lcm_copyprop(parse_program(SRC))
        in_loop = [
            str(stmt)
            for node in LOOP_BLOCKS
            if work.has_block(node)
            for stmt in work.statements(node)
        ]
        # The rhs computation left the loop...
        assert not any("a + b" in text for text in in_loop)
        # ...but an assignment to x remains, once per iteration.
        assert any(text.startswith("x :=") for text in in_loop)

    def test_pde_empties_the_loop(self):
        result = pde(parse_program(SRC))
        for node in LOOP_BLOCKS:
            if result.graph.has_block(node):
                assert result.graph.statements(node) == (), node

    def test_both_pipelines_preserve_semantics(self):
        original, work = interleave_lcm_copyprop(parse_program(SRC))
        assert_semantics_preserved(original, work)
        result = pde(parse_program(SRC))
        assert_semantics_preserved(result.original, result.graph)
