"""Scale sanity: the full pipeline on a few-hundred-instruction program
completes promptly with the Section 6 statistics in their expected
ranges — the in-suite witness of the complexity study."""

from repro.core import pde
from repro.workloads import random_structured_program

from ..helpers import assert_semantics_preserved


class TestModeratelyLargePrograms:
    def test_pde_on_250_statement_program(self):
        graph = random_structured_program(seed=77, size=250, n_variables=8)
        result = pde(graph)
        stats = result.stats
        # Section 6 expectations at this scale:
        assert stats.rounds <= 12  # far below the linear conjecture
        assert stats.code_growth_factor < 3.0  # w = O(1)
        assert result.graph.instruction_count() <= stats.peak_instructions
        assert_semantics_preserved(result.original, result.graph, seeds=range(3))

    def test_dead_analysis_on_thousand_instructions(self):
        from repro.dataflow.dead import analyze_dead
        from repro.ir.splitting import split_critical_edges

        graph = split_critical_edges(
            random_structured_program(seed=5, size=1000, n_variables=10)
        )
        dead = analyze_dead(graph)
        # Bit-vector behaviour: bounded revisits per block.
        assert dead.result.transfer_evaluations <= 12 * len(graph.nodes())
