"""Every example script runs to completion — the examples are part of
the public surface and must not rot."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", SCRIPTS, ids=[s.stem for s in SCRIPTS])
def test_example_runs_cleanly(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples must narrate what they show"


def test_expected_example_set_present():
    names = {s.stem for s in SCRIPTS}
    assert {
        "quickstart",
        "loop_invariant_sinking",
        "irreducible_flow",
        "faint_code",
        "optimizer_pipeline",
        "hot_region_optimization",
        "compile_and_run",
    } <= names
