"""Integration tests for the command-line interface."""

import io
import sys

import pytest

from repro.cli import build_parser, main

FIG1 = """
graph
block s -> 1
block 1 { y := a + b } -> 2, 3
block 2 {} -> 4
block 3 { y := 4 } -> 4
block 4 { out(y) } -> e
block e
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "fig1.pde"
    path.write_text(FIG1)
    return str(path)


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestOptimize:
    def test_default_output_is_the_result_graph(self, capsys, program_file):
        code, out, _err = run_cli(capsys, "optimize", program_file)
        assert code == 0
        assert out.startswith("graph")
        assert "y := a + b" in out

    def test_diff_shows_both_columns(self, capsys, program_file):
        code, out, _err = run_cli(capsys, "optimize", "--diff", program_file)
        assert code == 0
        assert "before" in out and "after" in out

    def test_dot_output(self, capsys, program_file):
        code, out, _err = run_cli(capsys, "optimize", "--dot", program_file)
        assert code == 0
        assert out.startswith("digraph")

    def test_stats_go_to_stderr(self, capsys, program_file):
        code, _out, err = run_cli(capsys, "optimize", "--stats", program_file)
        assert code == 0
        assert "rounds=" in err and "w=" in err

    def test_pfe_variant(self, capsys, program_file):
        code, out, _err = run_cli(capsys, "optimize", "--variant", "pfe", program_file)
        assert code == 0

    def test_verify_flag_certifies(self, capsys, program_file):
        code, out, err = run_cli(capsys, "optimize", "--verify", program_file)
        assert code == 0
        assert "verified:" in err
        assert "admissibility" in err and "idempotence" in err

    def test_stdin_input(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "stdin", io.StringIO(FIG1))
        code, out, _err = run_cli(capsys, "optimize", "-")
        assert code == 0 and out.startswith("graph")


class TestAnalyze:
    def test_dumps_both_tables(self, capsys, program_file):
        code, out, _err = run_cli(capsys, "analyze", program_file)
        assert code == 0
        assert "Table 1" in out and "Table 2" in out
        assert "N-DEAD" in out and "N-DELAYED" in out


class TestExplain:
    def test_narrates_rounds(self, capsys, program_file):
        code, out, _err = run_cli(capsys, "explain", program_file)
        assert code == 0
        assert "round 1" in out
        assert "ask: candidate" in out
        assert "stabilised after" in out

    def test_pfe_variant(self, capsys, program_file):
        code, out, _err = run_cli(capsys, "explain", "--variant", "pfe", program_file)
        assert code == 0
        assert "fce:" in out


class TestCompile:
    def test_emits_bytecode_listing(self, capsys, program_file):
        code, out, err = run_cli(capsys, "compile", program_file)
        assert code == 0
        assert "HALT" in out
        assert "instructions" in err

    def test_optimised_listing_is_shorter_or_equal(self, capsys, program_file):
        _c, plain, _e = run_cli(capsys, "compile", program_file)
        _c, optimised, _e = run_cli(capsys, "compile", "--opt", program_file)
        assert len(optimised.splitlines()) <= len(plain.splitlines())

    def test_parse_error_reported_cleanly(self, capsys, tmp_path):
        bad = tmp_path / "bad.pde"
        bad.write_text("x := := 1;")
        code, _out, err = run_cli(capsys, "compile", str(bad))
        assert code == 2
        assert "parse error" in err

    def test_missing_file_reported_cleanly(self, capsys):
        code, _out, err = run_cli(capsys, "compile", "/definitely/missing.pde")
        assert code == 2
        assert "cannot read" in err


class TestProfile:
    def test_reports_costs_and_hot_blocks(self, capsys, program_file):
        code, out, _err = run_cli(
            capsys, "profile", "--trials", "50", program_file
        )
        assert code == 0
        assert "expected executed assignments" in out
        assert "hottest blocks" in out

    def test_saving_reported_when_improved(self, capsys, program_file):
        code, out, _err = run_cli(
            capsys, "profile", "--trials", "50", program_file
        )
        assert "saving:" in out


class TestFigures:
    def test_list(self, capsys):
        code, out, _err = run_cli(capsys, "figures")
        assert code == 0
        assert "1-2" in out and "5-6" in out

    def test_run_figure(self, capsys):
        code, out, _err = run_cli(capsys, "figures", "--run", "1-2")
        assert code == 0
        assert "matches" in out

    def test_run_unknown_figure(self, capsys):
        code, _out, err = run_cli(capsys, "figures", "--run", "99")
        assert code == 1
        assert "unknown" in err

    def test_run_figure_pfe_variant(self, capsys):
        code, out, _err = run_cli(capsys, "figures", "--run", "9", "--variant", "pfe")
        assert code == 0
        assert "matches" in out


class TestParser:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["optimize", "x.pde", "--variant", "pfe"])
        assert args.variant == "pfe"
