"""End-to-end integration tests across the whole pipeline:
parse → split → optimise → print → reparse → execute."""

import pytest

from repro import (
    DecisionSequence,
    execute,
    format_graph,
    parse_program,
    pde,
    pfe,
)
from repro.baselines import dce_only, fce_only, naive_sinking, single_pass_pde
from repro.core.optimality import is_better_or_equal, total_executable_statements
from repro.workloads import diamond_chain, loop_chain

from ..helpers import assert_semantics_preserved


class TestFullPipeline:
    SOURCE = """
    globals acc;
    i := 3;
    t := a * b;
    while (i > 0) {
        u := a * b;        # redundant with t on entry, invariant in loop
        i := i - 1;
        if ? { acc := acc + u; } else { skip; }
    }
    dead1 := i + 99;
    out(i);
    """

    def test_pipeline_round_trips_and_preserves_semantics(self):
        g = parse_program(self.SOURCE)
        result = pde(g)
        reparsed = parse_program(format_graph(result.graph))
        assert reparsed == result.graph
        assert_semantics_preserved(result.original, reparsed)

    def test_totally_dead_code_gone(self):
        result = pde(parse_program(self.SOURCE))
        texts = [str(s) for n in result.graph.nodes() for s in result.graph.statements(n)]
        assert "dead1 := i + 99" not in texts

    def test_globals_survive_whole_pipeline(self):
        result = pde(parse_program(self.SOURCE))
        texts = [str(s) for n in result.graph.nodes() for s in result.graph.statements(n)]
        assert any("acc :=" in t for t in texts)


class TestOrderingOfStrengths:
    """dce-only ⊑ fce-only and single-pass ⊑ pde ⊑ pfe, path-wise."""

    SOURCES = [
        """
        graph
        block s -> 1
        block 1 { y := a + b } -> 2, 3
        block 2 {} -> 4
        block 3 { y := 4 } -> 4
        block 4 { out(y) } -> e
        block e
        """,
        """
        graph
        block s -> 1
        block 1 { y := a + b; a := c } -> 2, 3
        block 2 { y := 7 } -> 4
        block 3 {} -> 4
        block 4 { out(y) } -> e
        block e
        """,
    ]

    @pytest.mark.parametrize("src", SOURCES)
    def test_hierarchy(self, src):
        g = parse_program(src)
        results = {
            "dce": dce_only(g).graph,
            "fce": fce_only(g).graph,
            "single": single_pass_pde(g).graph,
            "pde": pde(g).graph,
            "pfe": pfe(g).graph,
        }
        assert is_better_or_equal(results["fce"], results["dce"])
        assert is_better_or_equal(results["pde"], results["single"])
        assert is_better_or_equal(results["pde"], results["dce"])
        assert is_better_or_equal(results["pfe"], results["pde"])


class TestDynamicWins:
    def test_diamond_chain_dynamic_counts_strictly_drop(self):
        result = pde(diamond_chain(6))
        before = sum(total_executable_statements(result.original, 1))
        after = sum(total_executable_statements(result.graph, 1))
        assert after < before

    def test_loop_chain_loops_drained(self):
        result = pde(loop_chain(4))
        decisions = DecisionSequence([0, 0, 0, 1] * 8)  # iterate each loop
        base = execute(result.original, decisions=decisions)
        new = execute(result.graph, decisions=decisions.reset())
        assert new.outputs == base.outputs
        assert new.total_assignments < base.total_assignments

    def test_naive_sinking_can_lose_to_pde(self):
        src = parse_program(
            """
            graph
            block s -> 1
            block 1 { x := a + b } -> 5
            block 5 {} -> 7, 10
            block 7 { y := y + x } -> 5
            block 10 { out(y) } -> e
            block e
            """
        )
        naive = naive_sinking(src)
        good = pde(src)
        decisions = [0] * 6 + [1]
        naive_run = execute(naive.graph, decisions=DecisionSequence(list(decisions)))
        good_run = execute(good.graph, decisions=DecisionSequence(list(decisions)))
        assert naive_run.outputs == good_run.outputs
        assert good_run.total_assignments < naive_run.total_assignments
