"""Unit tests for the programmatic graph builder."""

import pytest

from repro.ir.builder import GraphBuilder, block_statements
from repro.ir.parser import parse_statement
from repro.ir.stmts import Assign
from repro.ir.validate import validate


class TestBlockStatements:
    def test_none_is_empty(self):
        assert block_statements(None) == []

    def test_source_string_split_on_semicolons(self):
        stmts = block_statements("x := 1; out(x);")
        assert [str(s) for s in stmts] == ["x := 1", "out(x)"]

    def test_single_statement_object(self):
        stmt = parse_statement("x := 1")
        assert block_statements(stmt) == [stmt]

    def test_sequence_of_statements(self):
        stmts = [parse_statement("x := 1"), parse_statement("out(x)")]
        assert block_statements(stmts) == stmts


class TestGraphBuilder:
    def test_figure_style_construction(self):
        g = (
            GraphBuilder()
            .block(1, "y := a + b")
            .block(2)
            .block(3, "y := 4")
            .block(4, "out(y)")
            .chain("s", 1)
            .edges((1, 2), (1, 3), (2, 4), (3, 4))
            .chain(4, "e")
            .build()
        )
        validate(g, strict=True)
        assert g.successors("1") == ("2", "3")
        assert isinstance(g.statements("1")[0], Assign)

    def test_integer_names_coerced(self):
        g = GraphBuilder().block(7, "out(x)").chain("s", 7, "e").build()
        assert g.has_block("7")

    def test_edge_creates_blocks_on_demand(self):
        g = GraphBuilder().chain("s", "a", "b", "e").build()
        assert g.has_block("a") and g.has_block("b")

    def test_block_redefinition_replaces_statements(self):
        builder = GraphBuilder().block("a", "x := 1")
        builder.block("a", "x := 2")
        g = builder.chain("s", "a", "e").build()
        assert [str(s) for s in g.statements("a")] == ["x := 2"]

    def test_build_twice_rejected(self):
        builder = GraphBuilder().chain("s", "e")
        builder.build()
        with pytest.raises(RuntimeError):
            builder.build()

    def test_globals_passed_through(self):
        g = GraphBuilder(globals_=("g",)).chain("s", "e").build()
        assert g.globals == frozenset({"g"})
