"""Unit tests for dominator computation."""

from repro.ir.dominance import dominates, dominators
from repro.ir.parser import parse_program

DIAMOND = """
graph
block s -> 1
block 1 {} -> 2, 3
block 2 {} -> 4
block 3 {} -> 4
block 4 { out(x) } -> e
block e
"""

LOOP = """
graph
block s -> 1
block 1 {} -> 2
block 2 {} -> 3
block 3 {} -> 2, 4
block 4 { out(x) } -> e
block e
"""


class TestDominators:
    def test_start_dominates_everything(self):
        g = parse_program(DIAMOND)
        dom = dominators(g)
        assert all("s" in dom[n] for n in g.nodes())

    def test_every_node_dominates_itself(self):
        g = parse_program(DIAMOND)
        dom = dominators(g)
        assert all(n in dom[n] for n in g.nodes())

    def test_branches_do_not_dominate_join(self):
        g = parse_program(DIAMOND)
        dom = dominators(g)
        assert "2" not in dom["4"] and "3" not in dom["4"]
        assert "1" in dom["4"]

    def test_loop_header_dominates_body(self):
        g = parse_program(LOOP)
        dom = dominators(g)
        assert "2" in dom["3"]
        assert "3" not in dom["2"]  # back edge does not grant dominance

    def test_dominates_helper(self):
        g = parse_program(DIAMOND)
        assert dominates(g, "1", "4")
        assert not dominates(g, "2", "4")

    def test_irreducible_two_entry_loop(self):
        g = parse_program(
            """
            graph
            block s -> 0
            block 0 {} -> 1, 2
            block 1 {} -> 2
            block 2 {} -> 1, 3
            block 3 { out(x) } -> e
            block e
            """
        )
        dom = dominators(g)
        # Neither loop node dominates the other: both are entered from 0.
        assert "1" not in dom["2"] and "2" not in dom["1"]
        assert "0" in dom["3"]
