"""Unit tests for natural loop detection."""

import pytest

from repro.ir.loops import back_edges, irreducible_cycle_nodes, natural_loops
from repro.ir.parser import parse_program
from repro.workloads import irreducible_mesh, loop_chain, random_structured_program

SIMPLE_LOOP = parse_program(
    """
    graph
    block s -> 1
    block 1 {} -> 2
    block 2 { x := x + 1 } -> 3
    block 3 {} -> 2, 4
    block 4 { out(x) } -> e
    block e
    """
)


class TestBackEdges:
    def test_loop_back_edge_found(self):
        assert back_edges(SIMPLE_LOOP) == [("3", "2")]

    def test_acyclic_graph_has_none(self):
        assert back_edges(parse_program("x := 1; out(x);")) == []

    def test_irreducible_cycle_has_no_back_edge(self):
        g = parse_program(
            """
            graph
            block s -> 0
            block 0 {} -> 1, 2
            block 1 {} -> 2
            block 2 {} -> 1, 3
            block 3 { out(x) } -> e
            block e
            """
        )
        assert back_edges(g) == []


class TestNaturalLoops:
    def test_body_of_simple_loop(self):
        loops = natural_loops(SIMPLE_LOOP)
        assert len(loops) == 1
        loop = loops[0]
        assert loop.header == "2"
        assert loop.body == frozenset({"2", "3"})
        assert "4" not in loop

    def test_nested_loops(self):
        g = parse_program(
            "while ? { while ? { x := x + 1; } y := y + 1; } out(x + y);"
        )
        loops = natural_loops(g)
        assert len(loops) == 2
        inner, outer = sorted(loops, key=len)
        assert inner.body < outer.body

    def test_loop_chain_produces_one_loop_per_segment(self):
        g = loop_chain(3)
        assert len(natural_loops(g)) == 3

    def test_self_loop(self):
        g = parse_program(
            "graph\nblock s -> 1\nblock 1 { x := x + 1 } -> 1, 2\n"
            "block 2 { out(x) } -> e\nblock e"
        )
        loops = natural_loops(g)
        assert len(loops) == 1
        assert loops[0].body == frozenset({"1"})


class TestIrreducibleCycles:
    def test_reducible_graphs_report_nothing(self):
        assert irreducible_cycle_nodes(SIMPLE_LOOP) == frozenset()

    @pytest.mark.parametrize("seed", range(5))
    def test_random_structured_report_nothing(self, seed):
        g = random_structured_program(seed, size=16)
        assert irreducible_cycle_nodes(g) == frozenset()

    def test_mesh_cycles_reported(self):
        g = irreducible_mesh(1)
        nodes = irreducible_cycle_nodes(g)
        assert {"l1", "r1"} <= nodes


class TestLoopsAfterOptimisation:
    def test_pde_keeps_loop_bodies_free_of_new_statements(self):
        """Structural rendering of 'no motion into loops': after pde, no
        loop body contains a pattern that was not inside that loop
        before."""
        from repro.core import pde

        g = parse_program(
            """
            graph
            block s -> 1
            block 1 { x := a + b } -> 2
            block 2 { q := q + 1 } -> 3
            block 3 {} -> 2, 4
            block 4 { out(x + q) } -> e
            block e
            """
        )
        result = pde(g)
        before_loops = {
            loop.header: {
                stmt.pattern()
                for node in loop.body
                for stmt in result.original.statements(node)
                if hasattr(stmt, "pattern")
            }
            for loop in natural_loops(result.original)
        }
        for loop in natural_loops(result.graph):
            patterns = {
                stmt.pattern()
                for node in loop.body
                for stmt in result.graph.statements(node)
                if hasattr(stmt, "pattern")
            }
            assert patterns <= before_loops[loop.header]
