"""Unit tests for the tidying utilities."""

import pytest

from repro.core import pde
from repro.ir.parser import parse_program
from repro.ir.simplify import merge_chains, remove_skips, tidy
from repro.ir.validate import validate
from repro.workloads import random_structured_program

from ..helpers import assert_semantics_preserved


class TestRemoveSkips:
    def test_drops_skip_statements(self):
        g = parse_program(
            "graph\nblock s -> 1\nblock 1 { skip; x := 1; skip; out(x) } -> e\nblock e"
        )
        assert remove_skips(g)
        assert [str(s) for s in g.statements("1")] == ["x := 1", "out(x)"]

    def test_no_change_reports_false(self):
        g = parse_program("graph\nblock s -> 1\nblock 1 { out(x) } -> e\nblock e")
        assert not remove_skips(g)


class TestMergeChains:
    def test_fuses_straight_line_pairs(self):
        g = parse_program(
            """
            graph
            block s -> 1
            block 1 { x := 1 } -> 2
            block 2 { out(x) } -> e
            block e
            """
        )
        assert merge_chains(g)
        assert not g.has_block("2")
        assert [str(s) for s in g.statements("1")] == ["x := 1", "out(x)"]
        validate(g)

    def test_keeps_branching_structure(self):
        g = parse_program(
            """
            graph
            block s -> 1
            block 1 {} -> 2, 3
            block 2 {} -> 4
            block 3 {} -> 4
            block 4 { out(x) } -> e
            block e
            """
        )
        merge_chains(g)
        # The fork and merge cannot fuse; branch targets may absorb
        # nothing here (each has the join as multi-pred successor).
        assert g.has_block("1") and g.has_block("4")
        assert len(g.successors("1")) == 2

    def test_does_not_touch_start_or_end(self):
        g = parse_program("graph\nblock s -> 1\nblock 1 { out(x) } -> e\nblock e")
        merge_chains(g)
        assert g.has_block("s") and g.has_block("e") and g.has_block("1")


class TestTidy:
    def test_cleans_pde_leftovers(self):
        result = pde(
            parse_program(
                """
                graph
                block s -> 1
                block 1 {} -> 2
                block 2 { y := a + b; c := y - d } -> 3
                block 3 {} -> 2, 4
                block 4 { out(c) } -> e
                block e
                """
            )
        )
        tidied = tidy(result.graph)
        assert tidied.instruction_count() == result.graph.instruction_count()
        assert len(tidied) < len(result.graph)
        validate(tidied)

    def test_original_untouched(self):
        g = parse_program("x := 1; skip; out(x);")
        before = g.fingerprint()
        tidy(g)
        assert g.fingerprint() == before

    @pytest.mark.parametrize("seed", range(8))
    def test_semantics_preserved(self, seed):
        g = random_structured_program(seed, size=16)
        tidied = tidy(g)
        validate(tidied)
        # Different shapes — compare by interpreter replay only.
        assert_semantics_preserved(g, tidied, seeds=range(4))

    def test_idempotent(self):
        g = random_structured_program(2, size=16)
        once = tidy(g)
        assert tidy(once) == once
