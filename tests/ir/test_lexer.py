"""Unit tests for the tokeniser."""

import pytest

from repro.ir.lexer import LexError, tokenize


def kinds_and_texts(source):
    return [(t.kind, t.text) for t in tokenize(source)]


class TestTokens:
    def test_assignment(self):
        assert kinds_and_texts("x := a + b") == [
            ("ident", "x"),
            ("symbol", ":="),
            ("ident", "a"),
            ("symbol", "+"),
            ("ident", "b"),
            ("eof", ""),
        ]

    def test_numbers(self):
        assert kinds_and_texts("12 345")[:2] == [("number", "12"), ("number", "345")]

    def test_multichar_symbols_win_over_prefixes(self):
        texts = [t.text for t in tokenize("a <= b >= c == d != e -> f := g")]
        assert "<=" in texts and ">=" in texts and "==" in texts
        assert "!=" in texts and "->" in texts and ":=" in texts

    def test_single_char_symbols(self):
        texts = [t.text for t in tokenize("( ) { } ; , ? < > ! - + * / %")]
        assert texts[:-1] == "( ) { } ; , ? < > ! - + * / %".split()

    def test_identifiers_with_underscores_and_digits(self):
        assert kinds_and_texts("S1_2 v10 _tmp")[:3] == [
            ("ident", "S1_2"),
            ("ident", "v10"),
            ("ident", "_tmp"),
        ]

    def test_comments_ignored(self):
        tokens = tokenize("x := 1 # the rest is ignored := ;\ny := 2")
        texts = [t.text for t in tokens if t.kind != "eof"]
        assert texts == ["x", ":=", "1", "y", ":=", "2"]

    def test_eof_always_last(self):
        assert tokenize("")[-1].kind == "eof"
        assert tokenize("x")[-1].kind == "eof"


class TestPositions:
    def test_line_tracking(self):
        tokens = tokenize("a\nb\n  c")
        a, b, c = tokens[0], tokens[1], tokens[2]
        assert (a.line, b.line, c.line) == (1, 2, 3)
        assert c.column == 3

    def test_error_carries_position(self):
        with pytest.raises(LexError) as info:
            tokenize("x := $")
        assert "line 1" in str(info.value)


class TestTokenHelpers:
    def test_is_symbol(self):
        token = tokenize(":=")[0]
        assert token.is_symbol(":=") and not token.is_symbol("=")

    def test_is_ident(self):
        token = tokenize("while")[0]
        assert token.is_ident() and token.is_ident("while")
        assert not token.is_ident("if")
