"""Unit tests for the statement IR and its local predicates (Table 1)."""

from repro.ir.exprs import BinOp, Const, Var
from repro.ir.stmts import (
    Assign,
    Branch,
    Out,
    Skip,
    blocks_pattern,
    lhs_of,
    make_assign,
    pattern_of,
)

ADD = BinOp("+", Var("a"), Var("b"))


class TestLocalPredicates:
    def test_assign_used_is_rhs_variables(self):
        stmt = Assign("x", ADD)
        assert stmt.used() == frozenset({"a", "b"})
        assert stmt.assign_used() == frozenset({"a", "b"})
        assert stmt.relevant_used() == frozenset()

    def test_assign_modified(self):
        assert Assign("x", ADD).modified() == "x"

    def test_out_is_relevant(self):
        stmt = Out(ADD)
        assert stmt.is_relevant()
        assert stmt.relevant_used() == frozenset({"a", "b"})
        assert stmt.assign_used() == frozenset()
        assert stmt.modified() is None

    def test_branch_is_relevant(self):
        stmt = Branch(Var("c"))
        assert stmt.is_relevant()
        assert stmt.relevant_used() == frozenset({"c"})
        assert stmt.modified() is None

    def test_skip_touches_nothing(self):
        stmt = Skip()
        assert not stmt.is_relevant()
        assert stmt.used() == frozenset()
        assert stmt.modified() is None


class TestPatterns:
    def test_pattern_string(self):
        assert Assign("x", ADD).pattern() == "x := a + b"

    def test_same_pattern_compares_equal(self):
        assert Assign("x", ADD) == Assign("x", BinOp("+", Var("a"), Var("b")))

    def test_pattern_of_non_assignment_is_none(self):
        assert pattern_of(Out(ADD)) is None
        assert pattern_of(Skip()) is None

    def test_lhs_of(self):
        assert lhs_of(Assign("q", Const(1))) == "q"
        assert lhs_of(Skip()) is None


class TestBlocksPattern:
    """Definition 3.2 discussion: what blocks the sinking of ``x := t``."""

    RHS_VARS = frozenset({"a", "b"})

    def test_modifying_an_operand_blocks(self):
        assert blocks_pattern(Assign("a", Const(0)), "x", self.RHS_VARS)

    def test_using_the_lhs_blocks(self):
        assert blocks_pattern(Out(Var("x")), "x", self.RHS_VARS)
        assert blocks_pattern(Assign("y", Var("x")), "x", self.RHS_VARS)

    def test_modifying_the_lhs_blocks(self):
        assert blocks_pattern(Assign("x", Const(3)), "x", self.RHS_VARS)

    def test_unrelated_statement_does_not_block(self):
        assert not blocks_pattern(Assign("z", Var("c")), "x", self.RHS_VARS)
        assert not blocks_pattern(Out(Var("c")), "x", self.RHS_VARS)
        assert not blocks_pattern(Skip(), "x", self.RHS_VARS)

    def test_branch_blocks_only_via_lhs_use(self):
        assert blocks_pattern(Branch(Var("x")), "x", self.RHS_VARS)
        assert not blocks_pattern(Branch(Var("c")), "x", self.RHS_VARS)


class TestMakeAssign:
    def test_accepts_variable_name(self):
        assert make_assign("x", "y") == Assign("x", Var("y"))

    def test_accepts_integer(self):
        assert make_assign("x", 5) == Assign("x", Const(5))

    def test_accepts_expression(self):
        assert make_assign("x", ADD) == Assign("x", ADD)
