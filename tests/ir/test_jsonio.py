"""Unit tests for JSON interchange."""

import json

import pytest

from repro.ir.jsonio import dump_graph, graph_from_json, graph_to_json, load_graph
from repro.ir.parser import parse_program
from repro.workloads import random_arbitrary_graph, random_structured_program

SOURCE = """
graph
globals gv;
block s -> 1
block 1 { y := a + b; branch y > 0 } -> 2, 3
block 2 { out(y) } -> 4
block 3 { gv := 1 } -> 4
block 4 {} -> e
block e
"""


class TestRoundTrip:
    def test_reference_program(self):
        g = parse_program(SOURCE)
        assert load_graph(dump_graph(g)) == g

    @pytest.mark.parametrize("seed", range(6))
    def test_random_structured(self, seed):
        g = random_structured_program(seed, size=14)
        assert load_graph(dump_graph(g)) == g

    @pytest.mark.parametrize("seed", range(6))
    def test_random_arbitrary(self, seed):
        g = random_arbitrary_graph(seed, n_blocks=8)
        assert load_graph(dump_graph(g)) == g

    def test_after_optimisation(self):
        from repro.core import pde

        result = pde(parse_program(SOURCE))
        assert load_graph(dump_graph(result.graph)) == result.graph


class TestFormat:
    def test_document_shape(self):
        data = graph_to_json(parse_program(SOURCE))
        assert data["format"] == "repro-flowgraph"
        assert data["version"] == 1
        assert data["globals"] == ["gv"]
        names = {block["name"] for block in data["blocks"]}
        assert {"s", "e", "1", "2", "3", "4"} <= names

    def test_valid_json_text(self):
        text = dump_graph(parse_program(SOURCE))
        assert json.loads(text)["format"] == "repro-flowgraph"

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError, match="not a repro-flowgraph"):
            graph_from_json({"format": "something-else"})

    def test_wrong_version_rejected(self):
        data = graph_to_json(parse_program("out(x);"))
        data["version"] = 99
        with pytest.raises(ValueError, match="unsupported version"):
            graph_from_json(data)

    def test_malformed_statement_rejected(self):
        data = graph_to_json(parse_program("out(x);"))
        data["blocks"][0]["statements"] = ["this is not a statement :="]
        from repro.ir.parser import ParseError

        with pytest.raises(ParseError):
            graph_from_json(data)

    def test_edge_to_unknown_block_rejected(self):
        data = graph_to_json(parse_program("out(x);"))
        data["blocks"][0]["successors"] = ["ghost"]
        from repro.ir.cfg import FlowGraphError

        with pytest.raises(FlowGraphError):
            graph_from_json(data)
