"""Unit tests for structural validation."""

import pytest

from repro.ir.cfg import FlowGraph
from repro.ir.parser import parse_program, parse_statement
from repro.ir.validate import ValidationError, check, validate


def well_formed() -> FlowGraph:
    return parse_program("x := 1; out(x);")


class TestCheck:
    def test_well_formed_program_is_clean(self):
        assert check(well_formed(), strict=True) == []

    def test_unreachable_block_reported(self):
        g = well_formed()
        g.add_block("island")
        g.add_edge("island", "e")
        problems = check(g)
        assert any("unreachable" in p for p in problems)

    def test_block_not_reaching_end_reported(self):
        g = well_formed()
        g.add_block("sink")
        first = g.successors("s")[0]
        g.add_edge(first, "sink")
        problems = check(g)
        assert any("cannot reach" in p for p in problems)

    def test_branch_not_last_reported(self):
        g = FlowGraph()
        g.add_block("1", [parse_statement("branch x > 0"), parse_statement("x := 1")])
        g.add_block("2")
        g.add_block("3")
        g.add_edge("s", "1")
        g.add_edge("1", "2")
        g.add_edge("1", "3")
        g.add_edge("2", "e")
        g.add_edge("3", "e")
        assert any("not the last" in p for p in check(g))

    def test_branch_arity_mismatch_reported(self):
        g = FlowGraph()
        g.add_block("1", [parse_statement("branch x > 0")])
        g.add_edge("s", "1")
        g.add_edge("1", "e")
        assert any("successors" in p for p in check(g))

    def test_strict_requires_empty_start_end(self):
        g = well_formed()
        g.set_statements("e", [parse_statement("x := 1")])
        assert check(g) == []
        assert any("empty statement" in p for p in check(g, strict=True))

    def test_require_split_reports_critical_edges(self):
        g = parse_program(
            """
            graph
            block s -> 1, 2
            block 1 {} -> 3
            block 2 {} -> 3, 4
            block 3 { out(x) } -> e
            block 4 {} -> 3
            """
        )
        # Edge (2,3): 2 branches and 3 merges — wait, 4 also goes to 3.
        problems = check(g, require_split=True)
        assert any("critical edge" in p for p in problems)


class TestValidate:
    def test_raises_on_problem(self):
        g = well_formed()
        g.add_block("island")
        g.add_edge("island", "e")
        with pytest.raises(ValidationError):
            validate(g)

    def test_passes_on_clean_graph(self):
        validate(well_formed(), strict=True)
