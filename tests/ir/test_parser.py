"""Unit tests for both surface forms of the program language."""

import pytest

from repro.ir.exprs import BinOp, Const, UnaryOp, Var
from repro.ir.parser import ParseError, parse_expr, parse_program, parse_statement
from repro.ir.stmts import Assign, Branch, Out, Skip
from repro.ir.validate import validate


class TestExpressions:
    def test_precedence_mul_over_add(self):
        assert parse_expr("a + b * c") == BinOp(
            "+", Var("a"), BinOp("*", Var("b"), Var("c"))
        )

    def test_left_associativity(self):
        assert parse_expr("a - b - c") == BinOp(
            "-", BinOp("-", Var("a"), Var("b")), Var("c")
        )

    def test_parentheses(self):
        assert parse_expr("(a + b) * c") == BinOp(
            "*", BinOp("+", Var("a"), Var("b")), Var("c")
        )

    def test_comparison_binds_loosest(self):
        assert parse_expr("a + 1 < b * 2") == BinOp(
            "<",
            BinOp("+", Var("a"), Const(1)),
            BinOp("*", Var("b"), Const(2)),
        )

    def test_unary(self):
        assert parse_expr("-a * b") == BinOp("*", UnaryOp("-", Var("a")), Var("b"))
        assert parse_expr("!(a < b)") == UnaryOp("!", BinOp("<", Var("a"), Var("b")))

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_expr("a + b c")

    def test_reserved_word_rejected_as_variable(self):
        with pytest.raises(ParseError):
            parse_expr("while + 1")


class TestStatements:
    def test_assignment(self):
        assert parse_statement("x := a + b") == Assign(
            "x", BinOp("+", Var("a"), Var("b"))
        )

    def test_out(self):
        assert parse_statement("out(x + 1)") == Out(BinOp("+", Var("x"), Const(1)))

    def test_skip(self):
        assert parse_statement("skip") == Skip()

    def test_branch(self):
        assert parse_statement("branch x > 0") == Branch(
            BinOp(">", Var("x"), Const(0))
        )

    def test_reserved_lhs_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("out := 1")


class TestStructuredForm:
    def test_straight_line(self):
        g = parse_program("x := 1; out(x);")
        validate(g, strict=True)
        texts = [str(s) for n in g.nodes() for s in g.statements(n)]
        assert texts == ["x := 1", "out(x)"]

    def test_if_else_shape(self):
        g = parse_program("if (c) { x := 1; } else { x := 2; } out(x);")
        validate(g, strict=True)
        forks = [n for n in g.nodes() if len(g.successors(n)) == 2]
        assert len(forks) == 1
        assert g.branch_of(forks[0]) is not None

    def test_if_without_else_creates_bypass_edge(self):
        g = parse_program("if ? { x := 1; } out(x);")
        validate(g, strict=True)
        fork = next(n for n in g.nodes() if len(g.successors(n)) == 2)
        # One successor path skips the body entirely.
        joins = [n for n in g.nodes() if len(g.predecessors(n)) == 2]
        assert len(joins) == 1
        assert g.branch_of(fork) is None  # '?' = nondeterministic

    def test_while_shape(self):
        g = parse_program("while (x > 0) { x := x - 1; } out(x);")
        validate(g, strict=True)
        header = next(n for n in g.nodes() if len(g.successors(n)) == 2)
        assert g.branch_of(header) is not None
        # The loop body leads back to the header.
        body = g.successors(header)[0]
        assert header in g.successors(body)

    def test_globals_declaration(self):
        g = parse_program("globals gx, gy; gx := 1;")
        assert g.globals == frozenset({"gx", "gy"})

    def test_nested_structures(self):
        g = parse_program(
            """
            while ? {
                if ? { x := x + 1; } else { skip; }
            }
            out(x);
            """
        )
        validate(g, strict=True)

    def test_missing_semicolon_rejected(self):
        with pytest.raises(ParseError):
            parse_program("x := 1 out(x);")

    def test_unmatched_brace_rejected(self):
        with pytest.raises(ParseError):
            parse_program("if ? { x := 1;")

    def test_stray_close_brace_rejected(self):
        with pytest.raises(ParseError):
            parse_program("x := 1; }")


class TestGraphForm:
    SOURCE = """
    graph
    globals gv;
    block s -> 1
    block 1 { y := a + b } -> 2, 3
    block 2 {} -> 4
    block 3 { y := 4 } -> 4
    block 4 { out(y) } -> e
    block e
    """

    def test_blocks_and_edges(self):
        g = parse_program(self.SOURCE)
        validate(g, strict=True)
        assert set(g.nodes()) == {"s", "e", "1", "2", "3", "4"}
        assert g.successors("1") == ("2", "3")
        assert g.globals == frozenset({"gv"})

    def test_numeric_block_names_become_strings(self):
        g = parse_program(self.SOURCE)
        assert g.has_block("1")

    def test_custom_start_end(self):
        g = parse_program(
            """
            graph
            start entry
            end exit
            block entry -> m
            block m { out(x) } -> exit
            block exit
            """
        )
        assert g.start == "entry" and g.end == "exit"
        validate(g, strict=True)

    def test_edge_to_undeclared_block_rejected(self):
        with pytest.raises(ParseError):
            parse_program("graph\nblock s -> ghost")

    def test_branch_statement_allowed(self):
        g = parse_program(
            """
            graph
            block s -> 1
            block 1 { branch x > 0 } -> 2, 3
            block 2 { out(x) } -> e
            block 3 {} -> e
            block e
            """
        )
        validate(g, strict=True)
        assert g.branch_of("1") is not None

    def test_forward_references_allowed(self):
        g = parse_program(
            """
            graph
            block s -> 2
            block 2 {} -> 1
            block 1 { out(x) } -> e
            block e
            """
        )
        validate(g, strict=True)
