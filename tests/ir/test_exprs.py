"""Unit tests for the expression IR."""

import pytest

from repro.ir.exprs import (
    BinOp,
    Const,
    EvalError,
    UnaryOp,
    Var,
    rename,
    substitute,
)


class TestConstruction:
    def test_var_str(self):
        assert str(Var("x")) == "x"

    def test_const_str(self):
        assert str(Const(42)) == "42"

    def test_binop_str_parenthesises_compound_operands(self):
        expr = BinOp("*", BinOp("+", Var("a"), Var("b")), Const(2))
        assert str(expr) == "(a + b) * 2"

    def test_unary_str(self):
        assert str(UnaryOp("-", Var("x"))) == "-x"
        assert str(UnaryOp("!", BinOp("<", Var("a"), Var("b")))) == "!(a < b)"

    def test_unknown_binary_operator_rejected(self):
        with pytest.raises(ValueError):
            BinOp("**", Var("a"), Var("b"))

    def test_unknown_unary_operator_rejected(self):
        with pytest.raises(ValueError):
            UnaryOp("~", Var("a"))


class TestEquality:
    def test_structural_equality(self):
        assert BinOp("+", Var("a"), Var("b")) == BinOp("+", Var("a"), Var("b"))

    def test_operand_order_matters(self):
        assert BinOp("+", Var("a"), Var("b")) != BinOp("+", Var("b"), Var("a"))

    def test_hashable(self):
        seen = {BinOp("+", Var("a"), Var("b")), Var("a"), Const(1)}
        assert BinOp("+", Var("a"), Var("b")) in seen


class TestVariables:
    def test_var(self):
        assert Var("x").variables() == frozenset({"x"})

    def test_const(self):
        assert Const(3).variables() == frozenset()

    def test_nested(self):
        expr = BinOp("-", BinOp("*", Var("a"), Var("b")), UnaryOp("-", Var("c")))
        assert expr.variables() == frozenset({"a", "b", "c"})


class TestEvaluate:
    ENV = {"a": 7, "b": 3, "c": 0}

    def test_arithmetic(self):
        assert BinOp("+", Var("a"), Var("b")).evaluate(self.ENV) == 10
        assert BinOp("-", Var("a"), Var("b")).evaluate(self.ENV) == 4
        assert BinOp("*", Var("a"), Var("b")).evaluate(self.ENV) == 21

    def test_truncating_division(self):
        assert BinOp("/", Const(7), Const(2)).evaluate({}) == 3
        assert BinOp("/", Const(-7), Const(2)).evaluate({}) == -3

    def test_modulo_matches_truncation(self):
        assert BinOp("%", Const(7), Const(2)).evaluate({}) == 1
        assert BinOp("%", Const(-7), Const(2)).evaluate({}) == -1

    def test_comparisons_return_zero_or_one(self):
        assert BinOp("<", Var("b"), Var("a")).evaluate(self.ENV) == 1
        assert BinOp(">=", Var("b"), Var("a")).evaluate(self.ENV) == 0
        assert BinOp("==", Var("c"), Const(0)).evaluate(self.ENV) == 1
        assert BinOp("!=", Var("c"), Const(0)).evaluate(self.ENV) == 0

    def test_unary(self):
        assert UnaryOp("-", Var("a")).evaluate(self.ENV) == -7
        assert UnaryOp("!", Var("c")).evaluate(self.ENV) == 1
        assert UnaryOp("!", Var("a")).evaluate(self.ENV) == 0

    def test_division_by_zero_raises(self):
        with pytest.raises(EvalError):
            BinOp("/", Var("a"), Var("c")).evaluate(self.ENV)

    def test_modulo_by_zero_raises(self):
        with pytest.raises(EvalError):
            BinOp("%", Var("a"), Var("c")).evaluate(self.ENV)

    def test_uninitialised_variable_raises(self):
        with pytest.raises(EvalError):
            Var("nope").evaluate(self.ENV)


class TestSubstitute:
    def test_substitute_variable(self):
        expr = BinOp("+", Var("a"), Var("b"))
        assert substitute(expr, {"a": Const(1)}) == BinOp("+", Const(1), Var("b"))

    def test_substitute_leaves_others(self):
        assert substitute(Var("x"), {"y": Const(0)}) == Var("x")

    def test_rename(self):
        expr = UnaryOp("-", BinOp("*", Var("a"), Var("a")))
        renamed = rename(expr, {"a": "z"})
        assert renamed.variables() == frozenset({"z"})


class TestSubterms:
    def test_subterms_enumerates_all_nodes(self):
        expr = BinOp("+", Var("a"), BinOp("*", Var("b"), Const(2)))
        texts = [str(t) for t in expr.subterms()]
        assert texts == ["a + (b * 2)", "a", "b * 2", "b", "2"]
