"""Unit tests for the pretty printer (round trip with the parser)."""

from repro.ir.parser import parse_program
from repro.ir.printer import format_block, format_graph, format_side_by_side
from repro.ir.splitting import split_critical_edges


SOURCE = """
graph
globals gv;
block s -> 1
block 1 { y := a + b; out(y) } -> 2, 3
block 2 {} -> 4
block 3 { y := 4 } -> 4
block 4 { out(y) } -> e
block e
"""


class TestFormatGraph:
    def test_round_trip(self):
        g = parse_program(SOURCE)
        assert parse_program(format_graph(g)) == g

    def test_round_trip_after_splitting(self):
        g = split_critical_edges(parse_program(SOURCE))
        assert parse_program(format_graph(g)) == g

    def test_round_trip_structured_program(self):
        g = parse_program("x := 1; while ? { x := x + 1; } out(x);")
        assert parse_program(format_graph(g)) == g

    def test_globals_emitted(self):
        assert "globals gv;" in format_graph(parse_program(SOURCE))

    def test_custom_start_end_emitted(self):
        g = parse_program("graph\nstart a0\nend z9\nblock a0 -> z9\nblock z9")
        text = format_graph(g)
        assert "start a0" in text and "end z9" in text
        assert parse_program(text) == g


class TestFormatBlock:
    def test_empty_block(self):
        g = parse_program(SOURCE)
        assert format_block(g, "2") == "block 2 -> 4"

    def test_block_with_statements(self):
        g = parse_program(SOURCE)
        assert format_block(g, "3") == "block 3 { y := 4 } -> 4"

    def test_terminal_block(self):
        g = parse_program(SOURCE)
        assert format_block(g, "e") == "block e"


class TestSideBySide:
    def test_contains_both_titles_and_columns(self):
        g = parse_program(SOURCE)
        h = g.copy()
        h.set_statements("3", [])
        text = format_side_by_side(g, h, "left", "right")
        assert "left" in text and "right" in text
        assert "y := 4" in text  # only in the left column
        lines = text.splitlines()
        assert len(lines) >= len(format_graph(g).splitlines())
