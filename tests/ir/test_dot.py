"""Unit tests for Graphviz export."""

from repro.ir.dot import to_dot
from repro.ir.parser import parse_program


class TestToDot:
    def test_contains_all_nodes_and_edges(self):
        g = parse_program("x := 1; out(x);")
        dot = to_dot(g)
        for node in g.nodes():
            assert f'"{node}"' in dot
        for src, dst in g.edges():
            assert f'"{src}" -> "{dst}";' in dot

    def test_statements_appear_in_labels(self):
        g = parse_program("x := a + b; out(x);")
        dot = to_dot(g)
        assert "x := a + b" in dot

    def test_title_rendered_and_escaped(self):
        g = parse_program("out(x);")
        dot = to_dot(g, title='before "quote"')
        assert 'label="before \\"quote\\""' in dot

    def test_start_end_drawn_as_circles(self):
        g = parse_program("out(x);")
        dot = to_dot(g)
        assert dot.count("shape=circle") == 2

    def test_valid_digraph_wrapper(self):
        dot = to_dot(parse_program("out(x);"))
        assert dot.startswith("digraph") and dot.rstrip().endswith("}")
