"""Unit tests for the flow-graph container."""

import pytest

from repro.ir.cfg import FlowGraph, FlowGraphError
from repro.ir.parser import parse_statement


def simple_graph() -> FlowGraph:
    g = FlowGraph()
    g.add_block("1", [parse_statement("x := a + b")])
    g.add_block("2", [parse_statement("out(x)")])
    g.add_edge("s", "1")
    g.add_edge("1", "2")
    g.add_edge("2", "e")
    return g


class TestConstruction:
    def test_start_and_end_exist(self):
        g = FlowGraph()
        assert g.has_block("s") and g.has_block("e")
        assert len(g) == 2

    def test_duplicate_block_rejected(self):
        g = FlowGraph()
        g.add_block("1")
        with pytest.raises(FlowGraphError):
            g.add_block("1")

    def test_duplicate_edge_rejected(self):
        g = simple_graph()
        with pytest.raises(FlowGraphError):
            g.add_edge("1", "2")

    def test_edge_into_start_rejected(self):
        g = simple_graph()
        with pytest.raises(FlowGraphError):
            g.add_edge("1", "s")

    def test_edge_out_of_end_rejected(self):
        g = simple_graph()
        with pytest.raises(FlowGraphError):
            g.add_edge("e", "1")

    def test_edge_to_unknown_block_rejected(self):
        g = FlowGraph()
        with pytest.raises(FlowGraphError):
            g.add_edge("s", "ghost")

    def test_remove_edge(self):
        g = simple_graph()
        g.remove_edge("1", "2")
        assert g.successors("1") == ()
        assert g.predecessors("2") == ()

    def test_remove_missing_edge_rejected(self):
        g = simple_graph()
        with pytest.raises(FlowGraphError):
            g.remove_edge("2", "1")

    def test_custom_start_end_names(self):
        g = FlowGraph(start="entry", end="exit")
        assert g.has_block("entry") and g.has_block("exit")


class TestInspection:
    def test_successor_order_preserved(self):
        g = FlowGraph()
        g.add_block("f")
        g.add_block("t1")
        g.add_block("t2")
        g.add_edge("f", "t2")
        g.add_edge("f", "t1")
        assert g.successors("f") == ("t2", "t1")

    def test_instruction_count(self):
        assert simple_graph().instruction_count() == 2

    def test_variables_include_globals(self):
        g = FlowGraph(globals_=("g",))
        assert "g" in g.variables()

    def test_variables_cover_uses_and_defs(self):
        assert simple_graph().variables() == frozenset({"a", "b", "x"})

    def test_assignment_patterns_in_first_occurrence_order(self):
        g = FlowGraph()
        g.add_block("1", [parse_statement("y := 1"), parse_statement("x := a + b")])
        g.add_edge("s", "1")
        g.add_edge("1", "e")
        assert g.assignment_patterns() == ("y := 1", "x := a + b")

    def test_pattern_occurrences(self):
        g = FlowGraph()
        stmt = parse_statement("x := a + b")
        g.add_block("1", [stmt, parse_statement("out(x)"), stmt])
        g.add_edge("s", "1")
        g.add_edge("1", "e")
        assert g.pattern_occurrences("x := a + b") == [("1", 0), ("1", 2)]

    def test_branch_of(self):
        g = FlowGraph()
        g.add_block("1", [parse_statement("branch x > 0")])
        assert g.branch_of("1") is not None
        g.set_statements("1", [parse_statement("x := 1")])
        assert g.branch_of("1") is None


class TestCopyAndEquality:
    def test_copy_is_independent(self):
        g = simple_graph()
        clone = g.copy()
        clone.set_statements("1", [])
        assert g.statements("1") != clone.statements("1")

    def test_copy_equal_to_original(self):
        g = simple_graph()
        assert g == g.copy()
        assert hash(g) == hash(g.copy())

    def test_same_shape_ignores_statements(self):
        g = simple_graph()
        clone = g.copy()
        clone.set_statements("1", [])
        assert g.same_shape(clone)
        assert g != clone

    def test_different_edges_not_same_shape(self):
        g = simple_graph()
        clone = g.copy()
        clone.remove_edge("1", "2")
        assert not g.same_shape(clone)

    def test_fingerprint_changes_with_statements(self):
        g = simple_graph()
        before = g.fingerprint()
        g.set_statements("2", [])
        assert g.fingerprint() != before
