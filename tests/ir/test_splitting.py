"""Unit tests for critical edge splitting (paper Section 2.1, Figure 8)."""

from repro.ir.parser import parse_program
from repro.ir.splitting import (
    critical_edges,
    is_synthetic,
    split_critical_edges,
    synthetic_name,
)
from repro.ir.validate import validate

# Figure 8(a): (1, 2) is critical — 1 branches, 2 merges.
FIG8 = """
graph
block s -> 0, 1
block 0 {} -> 2
block 1 { x := a + b } -> 2, 3
block 2 { out(x) } -> 4
block 3 { x := 5 } -> 4
block 4 {} -> e
block e
"""


class TestCriticalEdges:
    def test_detects_the_figure8_edge(self):
        g = parse_program(FIG8)
        assert critical_edges(g) == [("1", "2")]

    def test_straight_line_has_none(self):
        g = parse_program("x := 1; out(x);")
        assert critical_edges(g) == []

    def test_loop_back_edge_is_critical(self):
        g = parse_program(
            """
            graph
            block s -> 1
            block 1 {} -> 2
            block 2 { x := x + 1 } -> 2, 3
            block 3 { out(x) } -> e
            block e
            """
        )
        assert ("2", "2") in critical_edges(g)


class TestSplitting:
    def test_result_has_no_critical_edges(self):
        g = split_critical_edges(parse_program(FIG8))
        assert critical_edges(g) == []
        validate(g, strict=True, require_split=True)

    def test_original_untouched(self):
        g = parse_program(FIG8)
        split_critical_edges(g)
        assert critical_edges(g) == [("1", "2")]

    def test_synthetic_node_inserted_on_the_edge(self):
        g = split_critical_edges(parse_program(FIG8))
        assert g.has_block("S1_2")
        assert g.successors("S1_2") == ("2",)
        assert "S1_2" in g.successors("1")
        assert g.statements("S1_2") == ()

    def test_successor_order_preserved(self):
        g = split_critical_edges(parse_program(FIG8))
        # 1's successors were (2, 3); the first slot now holds S1_2.
        assert g.successors("1") == ("S1_2", "3")

    def test_idempotent(self):
        once = split_critical_edges(parse_program(FIG8))
        twice = split_critical_edges(once)
        assert once == twice

    def test_paths_preserved_per_branching(self):
        g = parse_program(FIG8)
        h = split_critical_edges(g)
        # Same number of s->e paths (synthetic nodes are pass-throughs).
        from repro.interp.paths import enumerate_paths

        assert len(list(enumerate_paths(g, 1))) == len(list(enumerate_paths(h, 1)))


class TestSyntheticNames:
    def test_name_shape(self):
        g = parse_program(FIG8)
        assert synthetic_name(g, "1", "2") == "S1_2"

    def test_collision_avoidance(self):
        g = parse_program(FIG8)
        g.add_block("S1_2")
        assert synthetic_name(g, "1", "2") == "S1_2_2"

    def test_is_synthetic(self):
        assert is_synthetic("S1_2")
        assert not is_synthetic("b1")
        assert not is_synthetic("S")
