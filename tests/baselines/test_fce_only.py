"""Unit tests for the faint-code-elimination baseline."""

import pytest

from repro.baselines import dce_only, fce_only
from repro.ir.parser import parse_program
from repro.workloads import random_structured_program

from ..helpers import all_statement_texts, assert_semantics_preserved

FIG9 = """
graph
block s -> 1
block 1 {} -> 2
block 2 { x := x + 1 } -> 2, 3
block 3 { out(y) } -> e
block e
"""


class TestFceOnly:
    def test_removes_faint_loop(self):
        res = fce_only(parse_program(FIG9))
        assert "x := x + 1" not in all_statement_texts(res.graph)

    def test_strictly_stronger_than_dce_only(self):
        g = parse_program(FIG9)
        assert fce_only(g).graph.instruction_count() < dce_only(g).graph.instruction_count()

    def test_single_pass_suffices_on_figure12(self):
        res = fce_only(
            parse_program(
                "graph\nblock s -> 1\n"
                "block 1 { a := 2; y := a + b; y := c + d; out(y) } -> e\nblock e"
            )
        )
        assert res.eliminated == 2
        assert res.passes <= 2  # one removing pass + one fixpoint check

    @pytest.mark.parametrize("seed", range(6))
    def test_semantics_preserved_on_random_programs(self, seed):
        g = random_structured_program(seed, size=16)
        res = fce_only(g)
        assert_semantics_preserved(res.original, res.graph)

    @pytest.mark.parametrize("seed", range(6))
    def test_removes_at_least_what_dce_removes(self, seed):
        g = random_structured_program(seed, size=16)
        assert fce_only(g).graph.instruction_count() <= dce_only(g).graph.instruction_count()
