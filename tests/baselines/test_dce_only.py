"""Unit tests for the iterated total-DCE baseline."""

from repro.baselines import dce_only
from repro.core import pde
from repro.core.optimality import is_better_or_equal
from repro.ir.parser import parse_program

from ..helpers import all_statement_texts, assert_semantics_preserved

FIG1 = """
graph
block s -> 1
block 1 { y := a + b } -> 2, 3
block 2 {} -> 4
block 3 { y := 4 } -> 4
block 4 { x := y + 3; out(x) } -> e
block e
"""


class TestDceOnly:
    def test_removes_totally_dead(self):
        res = dce_only(
            parse_program("graph\nblock s -> 1\nblock 1 { q := 1; out(x) } -> e\nblock e")
        )
        assert "q := 1" not in all_statement_texts(res.graph)
        assert res.eliminated == 1

    def test_cannot_touch_partially_dead(self):
        res = dce_only(parse_program(FIG1))
        assert "y := a + b" in all_statement_texts(res.graph)
        assert res.eliminated == 0

    def test_iterates_elimination_elimination_chains(self):
        res = dce_only(
            parse_program(
                "graph\nblock s -> 1\n"
                "block 1 { a := 2; y := a + b; y := c + d; out(y) } -> e\nblock e"
            )
        )
        assert res.eliminated == 2
        assert res.passes >= 2

    def test_semantics_preserved(self):
        res = dce_only(parse_program(FIG1))
        assert_semantics_preserved(res.original, res.graph)

    def test_pde_dominates_dce_only(self):
        src = parse_program(FIG1)
        weak = dce_only(src)
        strong = pde(src)
        assert is_better_or_equal(strong.graph, weak.graph)
        assert not is_better_or_equal(weak.graph, strong.graph)

    def test_result_named(self):
        assert dce_only(parse_program(FIG1)).name == "dce-only"
