"""Unit tests for the Briggs/Cooper-style naive sinking baseline."""

import pytest

from repro.baselines import naive_sinking
from repro.ir.parser import parse_program
from repro.workloads import random_structured_program

from ..helpers import assert_semantics_preserved, statements_of

# Figure 6 situation: the only use of x := a+b sits inside a loop.
FIG6_TAIL = """
graph
block s -> 1
block 1 { x := a + b } -> 5
block 5 {} -> 7, 10
block 7 { y := y + x } -> 5
block 10 { out(y) } -> e
block e
"""


class TestMovesIntoLoops:
    def test_sinks_to_the_use_inside_the_loop(self):
        res = naive_sinking(parse_program(FIG6_TAIL))
        assert statements_of(res.graph, "1") == []
        assert statements_of(res.graph, "7")[0] == "x := a + b"
        assert res.passes == 1

    def test_impairs_looping_executions(self):
        from repro.interp import DecisionSequence, execute

        res = naive_sinking(parse_program(FIG6_TAIL))
        # Iterate the loop 5 times, then exit: 0,0,0,0,0 then 1.
        decisions = [0, 0, 0, 0, 0, 1]
        before = execute(res.original, decisions=DecisionSequence(list(decisions)))
        after = execute(res.graph, decisions=DecisionSequence(list(decisions)))
        assert after.outputs == before.outputs  # semantics intact
        assert after.executed["x := a + b"] == 5
        assert before.executed["x := a + b"] == 1


class TestSoundnessGuards:
    def test_no_move_without_dominance(self):
        g = parse_program(
            """
            graph
            block s -> 1, 2
            block 1 { x := a + b } -> 3
            block 2 {} -> 3
            block 3 { out(x) } -> e
            block e
            """
        )
        res = naive_sinking(g)
        assert statements_of(res.graph, "1") == ["x := a + b"]

    def test_no_move_past_operand_modification(self):
        g = parse_program(
            """
            graph
            block s -> 1
            block 1 { x := a + b } -> 2
            block 2 { a := 0 } -> 3
            block 3 { out(x) } -> e
            block e
            """
        )
        res = naive_sinking(g)
        assert statements_of(res.graph, "1") == ["x := a + b"]

    def test_no_move_with_multiple_defs(self):
        g = parse_program(
            """
            graph
            block s -> 1
            block 1 { x := a + b } -> 2, 3
            block 2 { x := 1 } -> 4
            block 3 {} -> 4
            block 4 { out(x) } -> e
            block e
            """
        )
        res = naive_sinking(g)
        assert "x := a + b" in statements_of(res.graph, "1")

    def test_no_move_of_globals(self):
        g = parse_program(
            """
            graph
            globals gx;
            block s -> 1
            block 1 { gx := a + b } -> 2
            block 2 { out(gx) } -> e
            block e
            """
        )
        res = naive_sinking(g)
        assert statements_of(res.graph, "1") == ["gx := a + b"]

    @pytest.mark.parametrize("seed", range(8))
    def test_semantics_preserved_on_random_programs(self, seed):
        g = random_structured_program(seed, size=16)
        res = naive_sinking(g)
        assert_semantics_preserved(res.original, res.graph)

    def test_no_move_when_the_loop_clobbers_the_operand(self):
        # Regression (fuzzer seed 20104): v1 := v4 must not enter a loop
        # whose use statement overwrites v4 — the moved definition would
        # re-execute each iteration with a *different* operand value,
        # turning the arithmetic accumulation geometric.
        g = parse_program(
            """
            graph
            block s -> 1
            block 1 { v1 := v4 } -> 2
            block 2 { out(v4); v4 := v4 + v1 } -> 2, 3
            block 3 {} -> e
            block e
            """
        )
        res = naive_sinking(g)
        assert statements_of(res.graph, "1") == ["v1 := v4"]
        from ..helpers import assert_semantics_preserved as check

        check(res.original, res.graph, seeds=range(8))

    def test_fuzzer_seed_20104_regression(self):
        from repro.workloads import random_arbitrary_graph

        g = random_arbitrary_graph(20104, n_blocks=9)
        res = naive_sinking(g)
        assert_semantics_preserved(res.original, res.graph, seeds=range(8))
