"""Unit tests for the single-pass (no second-order effects) baseline."""

import pytest

from repro.baselines import single_pass_pde
from repro.core import pde
from repro.core.optimality import is_better_or_equal
from repro.ir.parser import parse_program
from repro.workloads import random_structured_program

from ..helpers import all_statement_texts, assert_semantics_preserved

# Figure 10: needs a sinking-sinking chain a single pass cannot follow.
FIG10 = """
graph
block s -> 1
block 1 { y := a + b } -> 2
block 2 { a := c } -> 3, 4
block 3 { y := 5 } -> 5
block 4 {} -> 5
block 5 { x := a + c } -> 6
block 6 { out(x + y) } -> e
block e
"""


class TestSinglePass:
    def test_handles_first_order_cases(self):
        res = single_pass_pde(
            parse_program(
                """
                graph
                block s -> 1
                block 1 { y := a + b } -> 2, 3
                block 2 {} -> 4
                block 3 { y := 4 } -> 4
                block 4 { out(y) } -> e
                block e
                """
            )
        )
        # One ask + one dce suffice for the Figure 1 pattern.
        texts = all_statement_texts(res.graph)
        assert texts.count("y := a + b") == 1

    def test_misses_second_order_effects(self):
        weak = single_pass_pde(parse_program(FIG10))
        strong = pde(parse_program(FIG10))
        outcome_texts = all_statement_texts(weak.graph)
        # y := a+b is still executed on the path through the redefinition.
        assert outcome_texts.count("y := a + b") >= 1
        assert is_better_or_equal(strong.graph, weak.graph)
        assert not is_better_or_equal(weak.graph, strong.graph)

    @pytest.mark.parametrize("seed", range(6))
    def test_semantics_preserved(self, seed):
        g = random_structured_program(seed, size=16)
        res = single_pass_pde(g)
        assert_semantics_preserved(res.original, res.graph)

    @pytest.mark.parametrize("seed", range(6))
    def test_pde_always_at_least_as_good(self, seed):
        g = random_structured_program(seed, size=14, max_depth=1)
        weak = single_pass_pde(g)
        strong = pde(g)
        assert is_better_or_equal(strong.graph, weak.graph, max_edge_repeats=1)
