"""Unit tests for the def-use-graph marking baseline (Section 5.2)."""

import pytest

from repro.baselines import build_def_use_graph, defuse_elimination, fce_only
from repro.ir.parser import parse_program
from repro.ir.splitting import split_critical_edges
from repro.workloads import random_arbitrary_graph, random_structured_program

from ..helpers import all_statement_texts


class TestGraphConstruction:
    def test_edges_link_defs_to_uses(self):
        g = parse_program(
            "graph\nblock s -> 1\nblock 1 { x := 1; y := x + 1; out(y) } -> e\nblock e"
        )
        dug = build_def_use_graph(g)
        assert ("1", 1) in dug.uses_of_def[("1", 0)]  # x := 1 feeds y := x+1
        assert ("1", 2) in dug.uses_of_def[("1", 1)]  # y := x+1 feeds out(y)
        assert ("1", 2) in dug.roots

    def test_edge_count_measures_size(self):
        g = parse_program(
            "graph\nblock s -> 1\nblock 1 { x := 1; out(x); out(x) } -> e\nblock e"
        )
        dug = build_def_use_graph(g)
        assert dug.edge_count == 2

    def test_globals_rooted_at_end(self):
        g = parse_program(
            "graph\nglobals gv;\nblock s -> 1\nblock 1 { gv := 1 } -> e\nblock e"
        )
        dug = build_def_use_graph(g)
        assert ("1", 0) in dug.global_defs


class TestElimination:
    def test_removes_unmarked_assignments(self):
        res = defuse_elimination(
            parse_program("graph\nblock s -> 1\nblock 1 { q := 1; out(x) } -> e\nblock e")
        )
        assert "q := 1" not in all_statement_texts(res.graph)

    def test_optimistic_marking_removes_faint_code(self):
        res = defuse_elimination(
            parse_program(
                """
                graph
                block s -> 1
                block 1 {} -> 2
                block 2 { x := x + 1 } -> 2, 3
                block 3 { out(y) } -> e
                block e
                """
            )
        )
        assert "x := x + 1" not in all_statement_texts(res.graph)

    def test_keeps_global_assignments(self):
        res = defuse_elimination(
            parse_program(
                "graph\nglobals gv;\nblock s -> 1\nblock 1 { gv := 1 } -> e\nblock e"
            )
        )
        assert "gv := 1" in all_statement_texts(res.graph)

    def test_keeps_branch_condition_feeders(self):
        res = defuse_elimination(
            parse_program(
                """
                graph
                block s -> 1
                block 1 { c := 1; branch c > 0 } -> 2, 3
                block 2 { out(x) } -> e
                block 3 {} -> e
                block e
                """
            )
        )
        assert "c := 1" in all_statement_texts(res.graph)


class TestAgreesWithFaintElimination:
    """The paper: optimistic def-use marking detects every faint
    assignment — i.e. it coincides with fce."""

    @pytest.mark.parametrize("seed", range(10))
    def test_structured(self, seed):
        g = random_structured_program(seed, size=18)
        assert defuse_elimination(g).graph == fce_only(g).graph

    @pytest.mark.parametrize("seed", range(10))
    def test_arbitrary(self, seed):
        g = random_arbitrary_graph(seed, n_blocks=9)
        assert defuse_elimination(g).graph == fce_only(g).graph
