"""Unit tests for assignment patterns and sinking candidates (Figure 13)."""

from repro.dataflow.patterns import (
    PatternInfo,
    PatternUniverse,
    blocks_sinking,
    candidate_locations,
    local_predicates,
    sinking_candidate_index,
)
from repro.ir.builder import block_statements
from repro.ir.parser import parse_program, parse_statement

Y_AB = PatternInfo.of(parse_statement("y := a + b"))


def stmts(source):
    return tuple(block_statements(source))


class TestSinkingCandidateIndex:
    def test_single_unblocked_occurrence(self):
        assert sinking_candidate_index(stmts("x := 3; y := a + b"), Y_AB) == 1

    def test_blocked_by_operand_modification(self):
        assert sinking_candidate_index(stmts("y := a + b; a := c"), Y_AB) is None

    def test_blocked_by_lhs_use(self):
        assert sinking_candidate_index(stmts("y := a + b; out(y)"), Y_AB) is None

    def test_blocked_by_lhs_modification(self):
        assert sinking_candidate_index(stmts("y := a + b; y := 0"), Y_AB) is None

    def test_only_last_occurrence_is_candidate(self):
        # Figure 13: every occurrence blocks its predecessors.
        block = stmts("y := a + b; a := c; x := 3 * y; y := a + b")
        assert sinking_candidate_index(block, Y_AB) == 3

    def test_non_blocking_tail_is_fine(self):
        assert sinking_candidate_index(stmts("y := a + b; z := c"), Y_AB) == 0

    def test_virtual_use_of_globals_blocks(self):
        assert (
            sinking_candidate_index(
                stmts("y := a + b"), Y_AB, virtually_used=frozenset({"y"})
            )
            is None
        )

    def test_empty_block_has_no_candidate(self):
        assert sinking_candidate_index((), Y_AB) is None


class TestBlocksSinking:
    def test_occurrence_blocks_its_own_pattern(self):
        # An occurrence modifies the lhs, so it blocks incoming instances
        # (what Figure 7's m-to-n fusion relies on).
        assert blocks_sinking(parse_statement("y := a + b"), Y_AB)

    def test_irrelevant_statement_does_not_block(self):
        assert not blocks_sinking(parse_statement("q := c * 2"), Y_AB)


class TestPatternUniverse:
    GRAPH = parse_program(
        """
        graph
        block s -> 1
        block 1 { y := a + b; x := 1 } -> 2
        block 2 { y := a + b; out(y); out(x) } -> e
        block e
        """
    )

    def test_patterns_deduplicated_and_sorted(self):
        patterns = PatternUniverse(self.GRAPH)
        assert patterns.patterns() == ("x := 1", "y := a + b")

    def test_info_lookup(self):
        patterns = PatternUniverse(self.GRAPH)
        info = patterns.info("y := a + b")
        assert info.lhs == "y" and info.rhs_variables == frozenset({"a", "b"})

    def test_instance_creates_fresh_statement(self):
        patterns = PatternUniverse(self.GRAPH)
        inst = patterns.info("x := 1").instance()
        assert inst.pattern() == "x := 1"

    def test_members_decodes_vector(self):
        patterns = PatternUniverse(self.GRAPH)
        vector = patterns.universe.full
        assert {i.pattern for i in patterns.members(vector)} == {
            "x := 1",
            "y := a + b",
        }


class TestLocalPredicates:
    def test_candidate_and_block_in_same_block(self):
        g = parse_program(
            """
            graph
            block s -> 1
            block 1 { out(y); y := a + b } -> e
            block e
            """
        )
        patterns = PatternUniverse(g)
        loc_delayed, loc_blocked = local_predicates(g, patterns, "1")
        bit = patterns.universe.bit("y := a + b")
        # The trailing occurrence is a candidate, and the out(y) blocks
        # incoming instances.
        assert loc_delayed & bit
        assert loc_blocked & bit

    def test_global_blocked_at_end_node(self):
        g = parse_program(
            "graph\nglobals gv;\nblock s -> 1\nblock 1 { gv := 1 } -> e\nblock e"
        )
        patterns = PatternUniverse(g)
        _d, blocked = local_predicates(g, patterns, "e")
        assert blocked & patterns.universe.bit("gv := 1")

    def test_candidate_locations(self):
        g = parse_program(
            """
            graph
            block s -> 1
            block 1 { y := a + b } -> 2
            block 2 { y := a + b; out(y) } -> e
            block e
            """
        )
        patterns = PatternUniverse(g)
        assert candidate_locations(g, patterns) == [("1", 0, "y := a + b")]
