"""Unit tests for the generic worklist solver."""

from repro.dataflow.bitvec import Universe
from repro.dataflow.framework import BACKWARD, FORWARD, Analysis, solve
from repro.ir.parser import parse_program

DIAMOND = parse_program(
    """
    graph
    block s -> 1
    block 1 {} -> 2, 3
    block 2 {} -> 4
    block 3 {} -> 4
    block 4 { out(x) } -> e
    block e
    """
)


class _ForwardGen(Analysis):
    """Gen a bit in a chosen block; confluence decides merge behaviour."""

    direction = FORWARD

    def __init__(self, graph, universe, gen_in, confluence):
        super().__init__(graph, universe)
        self._gen_in = gen_in
        self.confluence = confluence

    def boundary(self):
        return 0

    def transfer(self, node, value):
        if node == self._gen_in:
            return value | self.universe.bit("p")
        return value


class TestConfluence:
    def test_all_paths_meet_kills_one_sided_fact(self):
        u = Universe(["p"])
        result = solve(_ForwardGen(DIAMOND, u, gen_in="2", confluence="all"))
        assert result.exit["2"] == u.bit("p")
        assert result.entry["4"] == 0  # only true on one branch

    def test_any_path_meet_keeps_one_sided_fact(self):
        u = Universe(["p"])
        result = solve(_ForwardGen(DIAMOND, u, gen_in="2", confluence="any"))
        assert result.entry["4"] == u.bit("p")

    def test_fact_from_common_ancestor_survives_all_meet(self):
        u = Universe(["p"])
        result = solve(_ForwardGen(DIAMOND, u, gen_in="1", confluence="all"))
        assert result.entry["4"] == u.bit("p")


class _BackwardLive(Analysis):
    direction = BACKWARD

    def boundary(self):
        return 0

    def transfer(self, node, value):
        if node == "4":
            return value | self.universe.bit("x")
        return value


class TestBackward:
    def test_backward_propagation(self):
        u = Universe(["x"])
        result = solve(_BackwardLive(DIAMOND, u))
        assert result.entry["4"] == u.bit("x")
        assert result.exit["2"] == u.bit("x")
        assert result.exit["3"] == u.bit("x")
        assert result.entry["s"] == u.bit("x")

    def test_boundary_applied_at_end(self):
        u = Universe(["x"])
        result = solve(_BackwardLive(DIAMOND, u))
        assert result.exit["e"] == 0


class _LoopPass(Analysis):
    direction = FORWARD

    def boundary(self):
        return self.universe.full

    def transfer(self, node, value):
        return value


class TestFixpoint:
    def test_loop_converges_to_greatest_solution(self):
        loop = parse_program(
            """
            graph
            block s -> 1
            block 1 {} -> 2
            block 2 {} -> r1, 3
            block r1 {} -> 1
            block 3 { out(x) } -> e
            block e
            """
        )
        u = Universe(["p"])
        result = solve(_LoopPass(loop, u))
        # Pass-through transfer with a full boundary: everything stays full.
        assert all(v == u.full for v in result.entry.values())

    def test_statistics_counted(self):
        u = Universe(["p"])
        result = solve(_ForwardGen(DIAMOND, u, gen_in="1", confluence="all"))
        assert result.transfer_evaluations >= len(DIAMOND.nodes())

    def test_result_member_helpers(self):
        u = Universe(["p"])
        result = solve(_ForwardGen(DIAMOND, u, gen_in="1", confluence="all"))
        assert result.exit_members("1") == ("p",)
        assert result.entry_members("1") == ()
