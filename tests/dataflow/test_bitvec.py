"""Unit tests for the named bit-vector universe."""

import pytest

from repro.dataflow.bitvec import Universe


class TestUniverse:
    def test_bit_positions_follow_order(self):
        u = Universe(["a", "b", "c"])
        assert u.bit("a") == 1 and u.bit("b") == 2 and u.bit("c") == 4

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            Universe(["a", "a"])

    def test_full_mask(self):
        assert Universe(["a", "b", "c"]).full == 0b111
        assert Universe([]).full == 0

    def test_mask_ignores_unknown_names(self):
        u = Universe(["a", "b"])
        assert u.mask(["a", "zzz"]) == u.bit("a")

    def test_members_in_universe_order(self):
        u = Universe(["a", "b", "c"])
        assert u.members(0b101) == ("a", "c")

    def test_test(self):
        u = Universe(["a", "b"])
        assert u.test(0b10, "b") and not u.test(0b10, "a")

    def test_format(self):
        u = Universe(["x", "y"])
        assert u.format(0b11) == "{x, y}"
        assert u.format(0) == "{}"

    def test_contains_and_iter(self):
        u = Universe(["p", "q"])
        assert "p" in u and "z" not in u
        assert list(u) == ["p", "q"]
        assert len(u) == 2

    def test_index(self):
        u = Universe(["p", "q"])
        assert u.index("q") == 1
