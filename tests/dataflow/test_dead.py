"""Unit tests for the dead variable analysis (Table 1, left system)."""

from repro.dataflow.dead import analyze_dead
from repro.ir.parser import parse_program


def graph(src):
    return parse_program(src)


class TestStraightLine:
    def test_variable_dead_after_last_use(self):
        g = graph(
            """
            graph
            block s -> 1
            block 1 { x := a + b; out(x) } -> e
            block e
            """
        )
        dead = analyze_dead(g)
        after = dead.after_each("1")
        assert not dead.universe.test(after[0], "x")  # live before out(x)
        assert dead.universe.test(after[1], "x")  # dead afterwards

    def test_redefinition_makes_earlier_value_dead(self):
        g = graph(
            """
            graph
            block s -> 1
            block 1 { x := 1; x := 2; out(x) } -> e
            block e
            """
        )
        dead = analyze_dead(g)
        assert dead.is_dead_after("1", 0, "x")
        assert not dead.is_dead_after("1", 1, "x")

    def test_rhs_use_keeps_operands_alive(self):
        g = graph(
            """
            graph
            block s -> 1
            block 1 { x := a + b; y := x * 2; out(y) } -> e
            block e
            """
        )
        dead = analyze_dead(g)
        assert not dead.is_dead_after("1", 0, "x")
        assert dead.is_dead_after("1", 1, "x")

    def test_everything_dead_at_end_exit(self):
        g = graph("graph\nblock s -> 1\nblock 1 { x := 1 } -> e\nblock e")
        dead = analyze_dead(g)
        assert dead.exit("e") == dead.universe.full


class TestBranching:
    PARTIAL = """
    graph
    block s -> 1
    block 1 { y := a + b } -> 2, 3
    block 2 { out(y) } -> 4
    block 3 { y := 4; out(y) } -> 4
    block 4 {} -> e
    block e
    """

    def test_partially_dead_is_not_dead(self):
        dead = analyze_dead(graph(self.PARTIAL))
        # y live at exit of 1: branch 2 uses it (all-paths meet keeps it live).
        assert not dead.universe.test(dead.exit("1"), "y")

    def test_dead_on_the_redefining_branch(self):
        dead = analyze_dead(graph(self.PARTIAL))
        assert dead.universe.test(dead.entry("3"), "y")

    def test_live_on_the_using_branch(self):
        dead = analyze_dead(graph(self.PARTIAL))
        assert not dead.universe.test(dead.entry("2"), "y")


class TestLoops:
    def test_self_increment_is_not_dead(self):
        # Figure 9: x := x+1 uses x, so x is live around the loop.
        g = graph(
            """
            graph
            block s -> 1
            block 1 {} -> 2
            block 2 { x := x + 1 } -> 2, 3
            block 3 { out(y) } -> e
            block e
            """
        )
        dead = analyze_dead(g)
        assert not dead.is_dead_after("2", 0, "x")

    def test_loop_carried_liveness(self):
        g = graph(
            """
            graph
            block s -> 1
            block 1 { acc := 0 } -> 2
            block 2 { acc := acc + 1 } -> 2, 3
            block 3 { out(acc) } -> e
            block e
            """
        )
        dead = analyze_dead(g)
        assert not dead.is_dead_after("1", 0, "acc")


class TestRelevantStatements:
    def test_branch_condition_keeps_variable_alive(self):
        g = graph(
            """
            graph
            block s -> 1
            block 1 { c := 1; branch c > 0 } -> 2, 3
            block 2 { out(x) } -> e
            block 3 {} -> e
            block e
            """
        )
        dead = analyze_dead(g)
        assert not dead.is_dead_after("1", 0, "c")

    def test_globals_live_at_end(self):
        g = graph(
            """
            graph
            globals gv;
            block s -> 1
            block 1 { gv := 1 } -> e
            block e
            """
        )
        dead = analyze_dead(g)
        assert not dead.universe.test(dead.exit("e"), "gv")
        assert not dead.is_dead_after("1", 0, "gv")

    def test_non_global_assignment_before_end_is_dead(self):
        g = graph("graph\nblock s -> 1\nblock 1 { q := 1 } -> e\nblock e")
        dead = analyze_dead(g)
        assert dead.is_dead_after("1", 0, "q")


class TestAccessors:
    def test_members_helpers(self):
        g = graph("graph\nblock s -> 1\nblock 1 { x := 1; out(x) } -> e\nblock e")
        dead = analyze_dead(g)
        assert "x" in dead.dead_at_exit("1")
        assert "x" not in dead.universe.members(dead.after_each("1")[0])

    def test_unknown_variable_reports_not_dead(self):
        g = graph("graph\nblock s -> 1\nblock 1 { x := 1 } -> e\nblock e")
        dead = analyze_dead(g)
        assert not dead.is_dead_after("1", 0, "nonexistent")
