"""Unit tests for the faint variable analysis (Table 1, right system)."""

import pytest

from repro.dataflow.dead import analyze_dead
from repro.dataflow.faint import analyze_faint
from repro.ir.parser import parse_program
from repro.workloads import random_arbitrary_graph, random_structured_program

FIG9 = """
graph
block s -> 1
block 1 {} -> 2
block 2 { x := x + 1 } -> 2, 3
block 3 { out(y) } -> e
block e
"""


class TestFigure9:
    def test_self_increment_is_faint_but_not_dead(self):
        g = parse_program(FIG9)
        dead = analyze_dead(g)
        faint = analyze_faint(g)
        assert not dead.is_dead_after("2", 0, "x")
        assert faint.is_faint_after("2", 0, "x")


class TestChains:
    def test_chain_feeding_only_faint_code_is_faint(self):
        g = parse_program(
            """
            graph
            block s -> 1
            block 1 { a := 1; b := a + 1; c := b + 1 } -> e
            block e
            """
        )
        faint = analyze_faint(g)
        assert faint.is_faint_after("1", 0, "a")
        assert faint.is_faint_after("1", 1, "b")
        assert faint.is_faint_after("1", 2, "c")

    def test_chain_reaching_out_is_not_faint(self):
        g = parse_program(
            """
            graph
            block s -> 1
            block 1 { a := 1; b := a + 1; out(b) } -> e
            block e
            """
        )
        faint = analyze_faint(g)
        assert not faint.is_faint_after("1", 0, "a")
        assert not faint.is_faint_after("1", 1, "b")

    def test_mutually_useless_pair_is_faint(self):
        # Figure 12 flavour: each value only feeds the other.
        g = parse_program(
            """
            graph
            block s -> 1
            block 1 {} -> 2
            block 2 { a := b + 1; b := a + 1 } -> 2, 3
            block 3 { out(z) } -> e
            block e
            """
        )
        faint = analyze_faint(g)
        assert faint.is_faint_after("2", 0, "a")
        assert faint.is_faint_after("2", 1, "b")


class TestRelevantUses:
    def test_out_kills_faintness(self):
        g = parse_program(
            "graph\nblock s -> 1\nblock 1 { x := 1; out(x) } -> e\nblock e"
        )
        faint = analyze_faint(g)
        assert not faint.is_faint_after("1", 0, "x")

    def test_branch_condition_kills_faintness(self):
        g = parse_program(
            """
            graph
            block s -> 1
            block 1 { c := 1; branch c > 0 } -> 2, 3
            block 2 {} -> e
            block 3 {} -> e
            block e
            """
        )
        faint = analyze_faint(g)
        assert not faint.is_faint_after("1", 0, "c")

    def test_globals_never_faint_at_end(self):
        g = parse_program(
            "graph\nglobals gv;\nblock s -> 1\nblock 1 { gv := 1 } -> e\nblock e"
        )
        faint = analyze_faint(g)
        assert not faint.is_faint_after("1", 0, "gv")


class TestFaintGeneralisesDead:
    """Every dead variable is faint (dead ⊆ faint, pointwise)."""

    @pytest.mark.parametrize("seed", range(8))
    def test_on_random_structured(self, seed):
        g = random_structured_program(seed, size=18)
        dead = analyze_dead(g)
        faint = analyze_faint(g)
        for node in g.nodes():
            assert dead.entry(node) & ~faint.entry(node) == 0
            assert dead.exit(node) & ~faint.exit(node) == 0

    @pytest.mark.parametrize("seed", range(8))
    def test_on_random_arbitrary(self, seed):
        g = random_arbitrary_graph(seed, n_blocks=9)
        dead = analyze_dead(g)
        faint = analyze_faint(g)
        for node in g.nodes():
            assert dead.entry(node) & ~faint.entry(node) == 0


class TestMethodsAgree:
    """The paper's slotwise worklist, the instruction-level vector
    worklist and the block-level solver compute the same greatest
    fixpoint."""

    @pytest.mark.parametrize("seed", range(10))
    def test_structured(self, seed):
        g = random_structured_program(seed, size=20)
        a = analyze_faint(g, method="instruction")
        b = analyze_faint(g, method="block")
        c = analyze_faint(g, method="slot")
        for node in g.nodes():
            assert a.entry(node) == b.entry(node) == c.entry(node), node
            assert a.exit(node) == b.exit(node) == c.exit(node), node

    @pytest.mark.parametrize("seed", range(10))
    def test_arbitrary(self, seed):
        g = random_arbitrary_graph(seed, n_blocks=10)
        a = analyze_faint(g, method="instruction")
        b = analyze_faint(g, method="block")
        c = analyze_faint(g, method="slot")
        for node in g.nodes():
            assert a.entry(node) == b.entry(node) == c.entry(node), node

    def test_slotwise_handles_the_lhs_dependency(self):
        # The chain a -> b -> c becomes faint only through the third
        # conjunct: c's faintness must flow back through the lhs slots.
        g = parse_program(
            "graph\nblock s -> 1\nblock 1 { a := 1; b := a + 1; c := b + 1 } -> e\nblock e"
        )
        faint = analyze_faint(g, method="slot")
        assert faint.is_faint_after("1", 0, "a")
        assert faint.is_faint_after("1", 1, "b")

    def test_slotwise_work_bounded(self):
        # Each slot flips at most once: evaluations stay polynomial in
        # instructions × variables (Section 6.1.2).
        g = random_structured_program(3, size=40, n_variables=6)
        faint = analyze_faint(g, method="slot")
        i = g.instruction_count() + len(g.nodes())
        v = len(g.variables())
        assert faint.transfer_evaluations <= 6 * i * v

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            analyze_faint(parse_program("out(x);"), method="bogus")


class TestAccessors:
    def test_faint_members(self):
        g = parse_program("graph\nblock s -> 1\nblock 1 { q := 1 } -> e\nblock e")
        faint = analyze_faint(g)
        assert "q" in faint.faint_at_exit("1")
        assert "q" in faint.faint_at_entry("1")

    def test_unknown_variable_not_faint(self):
        g = parse_program("graph\nblock s -> 1\nblock 1 { q := 1 } -> e\nblock e")
        faint = analyze_faint(g)
        assert not faint.is_faint_after("1", 0, "ghost")
