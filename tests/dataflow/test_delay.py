"""Unit tests for the delayability analysis (Table 2)."""

import pytest

from repro.dataflow.delay import analyze_delayability
from repro.ir.parser import parse_program
from repro.ir.splitting import split_critical_edges


def delayability(src, split=True):
    g = parse_program(src)
    if split:
        g = split_critical_edges(g)
    return g, analyze_delayability(g)


FIG1 = """
graph
block s -> 1
block 1 { y := a + b } -> 2, 3
block 2 {} -> 4
block 3 { y := 4 } -> 4
block 4 { out(y) } -> e
block e
"""


class TestFigure1Delayability:
    def test_delayed_through_the_empty_branch(self):
        g, d = delayability(FIG1)
        bit = d.patterns.universe.bit("y := a + b")
        assert d.x_delayed["1"] & bit
        assert d.n_delayed["2"] & bit
        assert d.x_delayed["2"] & bit

    def test_blocked_at_the_redefinition(self):
        g, d = delayability(FIG1)
        bit = d.patterns.universe.bit("y := a + b")
        assert d.n_delayed["3"] & bit
        assert not d.x_delayed["3"] & bit

    def test_insert_points(self):
        g, d = delayability(FIG1)
        bit = d.patterns.universe.bit("y := a + b")
        # The merge is not uniformly delayed, so the empty branch
        # materialises the instance at its exit; the redefining branch
        # at its entry (where it will then be dead).
        assert d.x_insert("2") & bit
        assert d.n_insert("3") & bit
        assert not d.n_insert("4") & bit

    def test_not_delayed_at_start(self):
        g, d = delayability(FIG1)
        assert d.n_delayed["s"] == 0


class TestLoops:
    def test_no_delay_into_loop_from_inside(self):
        # An assignment born inside a loop cannot delay past the header
        # merge (the entry path carries no instance).
        g, d = delayability(
            """
            graph
            block s -> 1
            block 1 {} -> 2
            block 2 { x := a + b } -> 3
            block 3 {} -> 2, 4
            block 4 { out(x) } -> e
            block e
            """
        )
        bit = d.patterns.universe.bit("x := a + b")
        assert not d.n_delayed["2"] & bit
        # It can reach the loop exit side, where out(x) blocks it.
        assert d.n_delayed["4"] & bit
        assert d.n_insert("4") & bit

    def test_delay_across_a_whole_loop(self):
        # An assignment born above a loop that does not touch it is
        # delayed across: every loop block carries the delayed bit.
        g, d = delayability(
            """
            graph
            block s -> 1
            block 1 { x := a + b } -> 2
            block 2 { q := q + 1 } -> 3
            block 3 {} -> 2, 4
            block 4 { out(x) } -> e
            block e
            """
        )
        bit = d.patterns.universe.bit("x := a + b")
        for node in ("2", "3"):
            assert d.n_delayed[node] & bit, node
        assert d.n_insert("4") & bit
        # No insertion inside the loop.
        for node in ("2", "3"):
            assert not d.n_insert(node) & bit
            assert not d.x_insert(node) & bit


class TestInvariants:
    def test_no_exit_insertions_at_branching_nodes(self):
        g, d = delayability(FIG1)
        d.check_invariants()

    def test_unsplit_graph_detected(self):
        src = """
        graph
        block s -> 0, 1
        block 0 {} -> 2
        block 1 { x := a + b } -> 2, 3
        block 2 { out(x) } -> 4
        block 3 { x := 5; out(x) } -> 4
        block 4 {} -> e
        block e
        """
        g, d = delayability(src, split=False)
        with pytest.raises(AssertionError):
            d.check_invariants()


class TestTermination:
    def test_stable_program_has_trivial_insert_predicates(self):
        # After pde stabilises, N-INSERT must be empty everywhere and
        # X-INSERT must coincide with LOCDELAYED (paper Section 5.4).
        from repro.core.driver import pde

        result = pde(parse_program(FIG1))
        d = analyze_delayability(result.graph)
        for node in result.graph.nodes():
            assert d.n_insert(node) == 0, node
            loc_delayed, _ = d.locals[node]
            assert d.x_insert(node) | loc_delayed == loc_delayed, node
