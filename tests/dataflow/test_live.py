"""Unit tests for live variables and the live/dead duality ([24])."""

import pytest

from repro.dataflow.dead import analyze_dead
from repro.dataflow.live import analyze_live
from repro.ir.parser import parse_program
from repro.workloads import random_arbitrary_graph, random_structured_program


class TestLiveBasics:
    def test_used_variable_live_before_use(self):
        g = parse_program(
            "graph\nblock s -> 1\nblock 1 { x := 1; out(x) } -> e\nblock e"
        )
        live = analyze_live(g)
        assert not live.is_live_after("1", 1, "x")
        assert live.is_live_after("1", 0, "x")

    def test_redefinition_kills_liveness(self):
        g = parse_program(
            "graph\nblock s -> 1\nblock 1 { x := 1; x := 2; out(x) } -> e\nblock e"
        )
        live = analyze_live(g)
        assert not live.is_live_after("1", 0, "x")

    def test_any_path_use_suffices(self):
        g = parse_program(
            """
            graph
            block s -> 1
            block 1 { y := 1 } -> 2, 3
            block 2 { out(y) } -> 4
            block 3 {} -> 4
            block 4 {} -> e
            block e
            """
        )
        live = analyze_live(g)
        assert live.is_live_after("1", 0, "y")  # used on one path only

    def test_globals_live_at_end(self):
        g = parse_program(
            "graph\nglobals gv;\nblock s -> 1\nblock 1 { gv := 1 } -> e\nblock e"
        )
        live = analyze_live(g)
        assert live.universe.test(live.exit("e"), "gv")
        assert live.is_live_after("1", 0, "gv")

    def test_members_helpers(self):
        g = parse_program(
            "graph\nblock s -> 1\nblock 1 { x := 1; out(x) } -> e\nblock e"
        )
        live = analyze_live(g)
        # x is born at statement 0, so it is live only *inside* block 1.
        assert "x" not in live.live_at_entry("1")
        assert "x" in live.universe.members(live.after_each("1")[0])
        assert not live.is_live_after("1", 0, "ghost")


class TestDuality:
    """LIVE = complement of DEAD, pointwise (the paper's [24])."""

    @pytest.mark.parametrize("seed", range(10))
    def test_structured(self, seed):
        g = random_structured_program(seed, size=16)
        live = analyze_live(g)
        dead = analyze_dead(g)
        full = live.universe.full
        for node in g.nodes():
            assert live.entry(node) == full & ~dead.entry(node), node
            assert live.exit(node) == full & ~dead.exit(node), node

    @pytest.mark.parametrize("seed", range(10))
    def test_arbitrary(self, seed):
        g = random_arbitrary_graph(seed, n_blocks=9)
        live = analyze_live(g)
        dead = analyze_dead(g)
        full = live.universe.full
        for node in g.nodes():
            assert live.entry(node) == full & ~dead.entry(node), node

    def test_with_globals(self):
        g = parse_program(
            "graph\nglobals gv;\nblock s -> 1\nblock 1 { gv := 1; q := 2 } -> e\nblock e"
        )
        live = analyze_live(g)
        dead = analyze_dead(g)
        full = live.universe.full
        for node in g.nodes():
            assert live.exit(node) == full & ~dead.exit(node)
