"""Unit tests for register-pressure measurement."""

import pytest

from repro.core import pde
from repro.dataflow.pressure import measure_pressure
from repro.ir.parser import parse_program
from repro.workloads import diamond_chain, random_structured_program


class TestMeasurePressure:
    def test_straight_line_counts(self):
        g = parse_program(
            "graph\nblock s -> 1\nblock 1 { a := 1; b := 2; out(a + b) } -> e\nblock e"
        )
        profile = measure_pressure(g)
        # Between b := 2 and the out, both a and b are live.
        assert profile.peak == 2
        assert profile.peak_at[0] == "1"

    def test_empty_program(self):
        profile = measure_pressure(parse_program("skip;"))
        assert profile.peak == 0

    def test_average_between_zero_and_peak(self):
        g = random_structured_program(3, size=16)
        profile = measure_pressure(g)
        assert 0 <= profile.average <= profile.peak

    def test_globals_contribute(self):
        g = parse_program(
            "graph\nglobals gv;\nblock s -> 1\nblock 1 { gv := 1 } -> e\nblock e"
        )
        profile = measure_pressure(g)
        assert profile.peak >= 1  # gv live until the end


class TestSinkingShortensLiveRanges:
    def test_peak_drops_on_eager_computation(self):
        # Everything computed up front (long live ranges) vs. after pde
        # (defs sunk to their uses).
        g = parse_program(
            """
            graph
            block s -> 1
            block 1 { a := p + 1; b := p + 2; c := p + 3 } -> 2
            block 2 { out(a) } -> 3
            block 3 { out(b) } -> 4
            block 4 { out(c) } -> e
            block e
            """
        )
        result = pde(g)
        before = measure_pressure(result.original)
        after = measure_pressure(result.graph)
        assert after.peak < before.peak

    @pytest.mark.parametrize("seed", range(8))
    def test_pde_never_raises_peak_pressure_much(self, seed):
        # Sinking can duplicate a definition onto two branches but each
        # path's ranges only shrink; peak pressure should not grow.
        g = random_structured_program(seed, size=16)
        result = pde(g)
        before = measure_pressure(result.original)
        after = measure_pressure(result.graph)
        assert after.peak <= before.peak

    def test_diamond_chain_average_improves(self):
        result = pde(diamond_chain(6))
        before = measure_pressure(result.original)
        after = measure_pressure(result.graph)
        assert after.average <= before.average
