"""Unit tests for reducibility and the round-robin fast path."""

import pytest

from repro.dataflow.dead import DeadVariableAnalysis, analyze_dead
from repro.dataflow.bitvec import Universe
from repro.dataflow.delay import analyze_delayability
from repro.dataflow.framework import solve
from repro.dataflow.reducible import (
    is_reducible,
    loop_connectedness,
    solve_round_robin,
)
from repro.ir.parser import parse_program
from repro.ir.splitting import split_critical_edges
from repro.workloads import (
    irreducible_mesh,
    random_arbitrary_graph,
    random_structured_program,
)

IRREDUCIBLE = """
graph
block s -> 0
block 0 {} -> 1, 2
block 1 {} -> 2
block 2 {} -> 1, 3
block 3 { out(x) } -> e
block e
"""


class TestIsReducible:
    def test_straight_line(self):
        assert is_reducible(parse_program("x := 1; out(x);"))

    def test_structured_loops_reducible(self):
        g = parse_program("while ? { x := x + 1; } out(x);")
        assert is_reducible(g)

    @pytest.mark.parametrize("seed", range(6))
    def test_all_structured_programs_reducible(self, seed):
        assert is_reducible(random_structured_program(seed, size=20))

    def test_two_entry_loop_irreducible(self):
        assert not is_reducible(parse_program(IRREDUCIBLE))

    def test_mesh_family_irreducible(self):
        assert not is_reducible(irreducible_mesh(2))

    def test_self_loop_is_reducible(self):
        g = parse_program(
            "graph\nblock s -> 1\nblock 1 { x := x + 1 } -> 1, 2\n"
            "block 2 { out(x) } -> e\nblock e"
        )
        assert is_reducible(g)

    def test_splitting_preserves_reducibility_status(self):
        g = parse_program(IRREDUCIBLE)
        assert not is_reducible(split_critical_edges(g))
        h = parse_program("while ? { x := x + 1; } out(x);")
        assert is_reducible(split_critical_edges(h))


class TestLoopConnectedness:
    def test_acyclic_graph_is_zero(self):
        assert loop_connectedness(parse_program("x := 1; out(x);")) == 0

    def test_single_loop_is_one(self):
        g = parse_program("while ? { x := x + 1; } out(x);")
        assert loop_connectedness(g) == 1

    def test_grows_with_loops(self):
        two = parse_program("while ? { x := x + 1; } while ? { y := y + 1; } out(x);")
        assert loop_connectedness(two) == 2


class TestRoundRobin:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_worklist_on_dead_analysis(self, seed):
        g = random_structured_program(seed, size=18)
        universe = Universe(sorted(g.variables()))
        analysis = DeadVariableAnalysis(g, universe)
        via_worklist = solve(analysis)
        via_sweeps, _sweeps = solve_round_robin(analysis)
        assert via_worklist.entry == via_sweeps.entry
        assert via_worklist.exit == via_sweeps.exit

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_worklist_on_irreducible_graphs(self, seed):
        g = random_arbitrary_graph(seed, n_blocks=9)
        universe = Universe(sorted(g.variables()))
        analysis = DeadVariableAnalysis(g, universe)
        via_worklist = solve(analysis)
        via_sweeps, _sweeps = solve_round_robin(analysis)
        assert via_worklist.entry == via_sweeps.entry

    @pytest.mark.parametrize("seed", range(8))
    def test_kam_ullman_sweep_bound_on_reducible_graphs(self, seed):
        """Section 6.1.1's 'almost linear': sweeps ≤ d(G) + 3 on
        well-structured (reducible) graphs."""
        g = random_structured_program(seed, size=20)
        assert is_reducible(g)
        universe = Universe(sorted(g.variables()))
        _result, sweeps = solve_round_robin(DeadVariableAnalysis(g, universe))
        assert sweeps <= loop_connectedness(g) + 3

    def test_sweep_count_small_on_deep_nesting(self):
        g = parse_program(
            """
            while ? {
                while ? {
                    while ? { x := x + 1; }
                }
            }
            out(x);
            """
        )
        universe = Universe(sorted(g.variables()))
        _result, sweeps = solve_round_robin(DeadVariableAnalysis(g, universe))
        assert sweeps <= loop_connectedness(g) + 3
