"""Unit tests for reaching definitions (def-use substrate)."""

from repro.dataflow.reaching import Definition, analyze_reaching
from repro.ir.parser import parse_program


class TestStraightLine:
    def test_definition_reaches_its_use(self):
        g = parse_program(
            "graph\nblock s -> 1\nblock 1 { x := 1; out(x) } -> e\nblock e"
        )
        reaching = analyze_reaching(g)
        defs = reaching.definitions_reaching("1", 1, "x")
        assert defs == (Definition("1", 0, "x"),)

    def test_redefinition_kills(self):
        g = parse_program(
            "graph\nblock s -> 1\nblock 1 { x := 1; x := 2; out(x) } -> e\nblock e"
        )
        reaching = analyze_reaching(g)
        defs = reaching.definitions_reaching("1", 2, "x")
        assert defs == (Definition("1", 1, "x"),)


class TestMerges:
    MERGE = """
    graph
    block s -> 1
    block 1 {} -> 2, 3
    block 2 { x := 1 } -> 4
    block 3 { x := 2 } -> 4
    block 4 { out(x) } -> e
    block e
    """

    def test_both_branch_definitions_reach_the_merge(self):
        reaching = analyze_reaching(parse_program(self.MERGE))
        defs = set(reaching.definitions_reaching("4", 0, "x"))
        assert defs == {Definition("2", 0, "x"), Definition("3", 0, "x")}


class TestLoops:
    def test_loop_definition_reaches_itself(self):
        g = parse_program(
            """
            graph
            block s -> 1
            block 1 { x := 0 } -> 2
            block 2 { x := x + 1 } -> 2, 3
            block 3 { out(x) } -> e
            block e
            """
        )
        reaching = analyze_reaching(g)
        defs = set(reaching.definitions_reaching("2", 0, "x"))
        assert defs == {Definition("1", 0, "x"), Definition("2", 0, "x")}
        exit_defs = set(reaching.definitions_in(reaching.exit(g.end)))
        assert Definition("2", 0, "x") in exit_defs
        assert Definition("1", 0, "x") not in exit_defs


class TestUninitialised:
    def test_no_definitions_reach_an_uninitialised_use(self):
        g = parse_program("graph\nblock s -> 1\nblock 1 { out(x) } -> e\nblock e")
        reaching = analyze_reaching(g)
        assert reaching.definitions_reaching("1", 0, "x") == ()
