"""Tests for lowering and the VM — including the differential oracle
against the source-level interpreter."""

import random

import pytest

from repro.codegen import format_listing, lower, run_bytecode
from repro.core import pde
from repro.interp import DecisionSequence, InterpreterError, execute
from repro.ir.parser import parse_program
from repro.workloads import random_arbitrary_graph, random_structured_program


class TestLowering:
    def test_straight_line(self):
        program = lower(parse_program("x := 2; out(x + 1);"))
        run = run_bytecode(program)
        assert run.outputs == [3]

    def test_block_offsets_recorded(self):
        program = lower(parse_program("x := 1; out(x);"))
        assert "s" in program.block_offsets
        assert "e" in program.block_offsets

    def test_fall_through_avoids_redundant_jumps(self):
        program = lower(parse_program("x := 1; y := 2; out(x + y);"))
        opcodes = [inst.opcode for inst in program]
        assert "JMP" not in opcodes  # pure straight line lays out flat

    def test_conditional_branch(self):
        source = "if (x > 0) { out(1); } else { out(2); }"
        program = lower(parse_program(source))
        assert run_bytecode(program, {"x": 5}).outputs == [1]
        assert run_bytecode(program, {"x": -5}).outputs == [2]

    def test_nondeterministic_branch_consumes_oracle(self):
        program = lower(parse_program("if ? { out(1); } else { out(2); }"))
        assert run_bytecode(program, decisions=DecisionSequence([0])).outputs == [1]
        assert run_bytecode(program, decisions=DecisionSequence([1])).outputs == [2]

    def test_choose_without_oracle_raises(self):
        program = lower(parse_program("if ? { out(1); } else { out(2); }"))
        with pytest.raises(InterpreterError):
            run_bytecode(program)

    def test_loop(self):
        program = lower(parse_program("i := 3; while (i > 0) { i := i - 1; } out(i);"))
        run = run_bytecode(program)
        assert run.outputs == [0]
        assert run.per_opcode["SUB"] == 3

    def test_multiway_branch_select(self):
        g = parse_program(
            """
            graph
            block s -> 1
            block 1 {} -> 2, 3, 4
            block 2 { out(2) } -> e
            block 3 { out(3) } -> e
            block 4 { out(4) } -> e
            block e
            """
        )
        program = lower(g)
        for decision, expected in ((0, 2), (1, 3), (2, 4), (5, 4)):
            run = run_bytecode(program, decisions=DecisionSequence([decision]))
            assert run.outputs == [expected]

    def test_division_traps(self):
        run = run_bytecode(lower(parse_program("out(1); x := 1 / z; out(2);")))
        assert run.outputs == [1]
        assert run.trap == "division by zero"

    def test_truncating_division_matches_source(self):
        run = run_bytecode(lower(parse_program("out(0 - 7 / 2); out((0 - 7) % 2);")))
        assert run.outputs == [-3, -1]

    def test_step_limit(self):
        program = lower(parse_program("while (1 > 0) { x := x + 1; }"))
        with pytest.raises(InterpreterError):
            run_bytecode(program, max_steps=100)

    def test_listing_is_printable(self):
        text = format_listing(lower(parse_program("out(x);")))
        assert "OUT" in text and "HALT" in text


class TestDifferentialOracle:
    """Compiled execution must match source interpretation exactly."""

    @pytest.mark.parametrize("seed", range(10))
    def test_structured(self, seed):
        self._compare(random_structured_program(seed, size=14), seed)

    @pytest.mark.parametrize("seed", range(10))
    def test_arbitrary(self, seed):
        self._compare(random_arbitrary_graph(seed, n_blocks=8), seed)

    @pytest.mark.parametrize("seed", range(6))
    def test_optimised_programs(self, seed):
        graph = random_structured_program(seed, size=14)
        self._compare(pde(graph).graph, seed)

    @staticmethod
    def _compare(graph, seed):
        program = lower(graph)
        rng = random.Random(seed)
        for _ in range(4):
            decisions = [rng.randint(0, 5) for _ in range(300)]
            env = {v: rng.randint(-3, 3) for v in graph.variables()}
            try:
                src = execute(
                    graph, dict(env), DecisionSequence(list(decisions)), max_steps=3000
                )
                vm = run_bytecode(
                    program, dict(env), DecisionSequence(list(decisions)), max_steps=60000
                )
            except InterpreterError:
                continue
            assert vm.outputs == src.outputs
            assert (vm.trap is None) == (src.error is None)


class TestOptimisationPaysAtMachineLevel:
    def test_pde_reduces_executed_instructions(self):
        source = """
        graph
        block s -> 1
        block 1 {} -> 2
        block 2 { y := a + b; c := y - d } -> 3
        block 3 {} -> 2, 4
        block 4 { out(c) } -> e
        block e
        """
        result = pde(parse_program(source))
        before = lower(result.original)
        after = lower(result.graph)
        decisions = [0] * 20 + [1]
        base = run_bytecode(
            before, {"a": 1, "b": 2, "d": 3}, DecisionSequence(list(decisions))
        )
        new = run_bytecode(
            after, {"a": 1, "b": 2, "d": 3}, DecisionSequence(list(decisions))
        )
        assert new.outputs == base.outputs
        assert new.executed < base.executed
