"""Unit and differential tests for the bytecode peephole pass."""

import random

import pytest

from repro.codegen import lower, peephole, run_bytecode
from repro.codegen.isa import Instruction
from repro.codegen.lower import BytecodeProgram
from repro.interp import DecisionSequence, InterpreterError
from repro.ir.parser import parse_program
from repro.workloads import random_arbitrary_graph, random_structured_program


class TestCoalescing:
    def test_op_mov_pair_fuses(self):
        program = lower(parse_program("x := a + b; out(x);"))
        tight = peephole(program)
        opcodes = [inst.opcode for inst in tight]
        assert opcodes == ["ADD", "OUT", "HALT"]
        assert tight.instructions[0].operands[0] == "x"

    def test_loadi_mov_pair_fuses(self):
        tight = peephole(lower(parse_program("x := 7; out(x);")))
        assert [inst.opcode for inst in tight] == ["LOADI", "OUT", "HALT"]

    def test_shared_temp_not_fused(self):
        # A temp mentioned three times must survive.
        program = BytecodeProgram(
            instructions=[
                Instruction("LOADI", ("$t1", 5)),
                Instruction("MOV", ("x", "$t1")),
                Instruction("OUT", ("$t1",)),
                Instruction("HALT", ()),
            ]
        )
        tight = peephole(program)
        assert [inst.opcode for inst in tight] == ["LOADI", "MOV", "OUT", "HALT"]

    def test_jump_target_on_the_mov_blocks_fusion(self):
        program = BytecodeProgram(
            instructions=[
                Instruction("JMP", (1,)),
                Instruction("MOV", ("x", "$t1")),  # jump target
                Instruction("HALT", ()),
            ]
        )
        # Prepend a defining instruction so the pair would otherwise fuse.
        program.instructions.insert(0, Instruction("LOADI", ("$t1", 3)))
        program.instructions[1] = Instruction("JMP", (2,))
        tight = peephole(program)
        assert any(inst.opcode == "MOV" for inst in tight)

    def test_self_move_removed(self):
        program = BytecodeProgram(
            instructions=[
                Instruction("MOV", ("x", "x")),
                Instruction("OUT", ("x",)),
                Instruction("HALT", ()),
            ]
        )
        tight = peephole(program)
        assert [inst.opcode for inst in tight] == ["OUT", "HALT"]

    def test_jump_targets_retargeted(self):
        source = "i := 3; while (i > 0) { i := i - 1; } out(i);"
        program = lower(parse_program(source))
        tight = peephole(program)
        run = run_bytecode(tight)
        assert run.outputs == [0]

    def test_block_offsets_remapped(self):
        program = lower(parse_program("x := 1; out(x);"))
        tight = peephole(program)
        assert max(tight.block_offsets.values()) <= len(tight)


class TestDifferential:
    @pytest.mark.parametrize("seed", range(10))
    def test_structured(self, seed):
        self._compare(random_structured_program(seed, size=14), seed)

    @pytest.mark.parametrize("seed", range(10))
    def test_arbitrary(self, seed):
        self._compare(random_arbitrary_graph(seed, n_blocks=8), seed)

    @staticmethod
    def _compare(graph, seed):
        plain = lower(graph)
        tight = peephole(plain)
        assert len(tight) <= len(plain)
        rng = random.Random(seed)
        for _ in range(4):
            decisions = [rng.randint(0, 5) for _ in range(300)]
            env = {v: rng.randint(-3, 3) for v in graph.variables()}
            try:
                a = run_bytecode(
                    plain, dict(env), DecisionSequence(list(decisions)), max_steps=60000
                )
                b = run_bytecode(
                    tight, dict(env), DecisionSequence(list(decisions)), max_steps=60000
                )
            except InterpreterError:
                continue
            assert a.outputs == b.outputs
            assert a.trap == b.trap
            assert b.executed <= a.executed

    def test_idempotent(self):
        program = lower(parse_program("x := a + b; y := x * 2; out(y);"))
        once = peephole(program)
        twice = peephole(once)
        assert [str(i) for i in once] == [str(i) for i in twice]
