"""Unit tests for the bytecode ISA."""

import pytest

from repro.codegen.isa import Instruction, OPCODES, format_instruction, format_listing


class TestInstruction:
    def test_valid_construction(self):
        inst = Instruction("ADD", ("x", "a", "b"))
        assert str(inst) == "ADD x, a, b"

    def test_unknown_opcode_rejected(self):
        with pytest.raises(ValueError, match="unknown opcode"):
            Instruction("FROB", ())

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError, match="expects"):
            Instruction("MOV", ("x",))

    def test_select_requires_three_targets(self):
        Instruction("SELECT", (1, 2, 3))
        with pytest.raises(ValueError, match="at least 3"):
            Instruction("SELECT", (1, 2))

    def test_halt_takes_no_operands(self):
        assert str(Instruction("HALT")) == "HALT"

    def test_immutable(self):
        inst = Instruction("OUT", ("x",))
        with pytest.raises(Exception):
            inst.opcode = "HALT"  # type: ignore[misc]


class TestFormatting:
    def test_listing_shows_indices_and_origins(self):
        listing = format_listing(
            [
                Instruction("LOADI", ("x", 1), source_block="b1"),
                Instruction("HALT"),
            ]
        )
        lines = listing.splitlines()
        assert lines[0].startswith("   0: LOADI x, 1")
        assert "; b1" in lines[0]
        assert lines[1].strip().startswith("1: HALT")

    def test_every_opcode_has_a_shape(self):
        for opcode, shape in OPCODES.items():
            assert isinstance(shape, tuple)
