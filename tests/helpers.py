"""Shared test utilities.

The central facility is :func:`assert_semantics_preserved`: it replays
identical branch-decision sequences against two programs with the same
branching structure and compares the observable behaviour (the ``out``
sequence), honouring the paper's footnote 3 — a transformation may make
run-time errors *disappear* but never introduce them or change outputs
produced before one.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional

from repro.interp import DecisionSequence, InterpreterError, execute
from repro.ir.cfg import FlowGraph

__all__ = [
    "assert_semantics_preserved",
    "assert_never_slower",
    "statements_of",
    "all_statement_texts",
]


def assert_semantics_preserved(
    original: FlowGraph,
    transformed: FlowGraph,
    seeds: Iterable[int] = range(10),
    max_steps: int = 4000,
    decisions_len: int = 400,
    env_range: int = 4,
) -> int:
    """Replay random executions against both programs and compare.

    Returns the number of comparisons actually performed (runs that
    exhaust the step or decision budget on the *original* are skipped —
    they say nothing either way).
    """
    compared = 0
    for seed in seeds:
        rng = random.Random(seed)
        decisions = [rng.randint(0, 7) for _ in range(decisions_len)]
        env = {name: rng.randint(-env_range, env_range) for name in original.variables()}
        try:
            base = execute(
                original, dict(env), DecisionSequence(decisions), max_steps=max_steps
            )
        except InterpreterError:
            continue
        try:
            new = execute(
                transformed, dict(env), DecisionSequence(decisions), max_steps=max_steps
            )
        except InterpreterError as error:
            raise AssertionError(
                f"transformed program did not finish where the original did: {error}"
            ) from error
        if base.error is None:
            assert new.error is None, (
                f"transformation introduced run-time error {new.error!r} "
                f"(seed {seed})"
            )
            assert new.outputs == base.outputs, (
                f"outputs changed (seed {seed}): {base.outputs} -> {new.outputs}"
            )
        else:
            # Errors may only disappear; outputs produced before the
            # original error must be reproduced in order.
            assert new.outputs[: len(base.outputs)] == base.outputs, (
                f"pre-error outputs changed (seed {seed})"
            )
        compared += 1
    return compared


def assert_never_slower(
    original: FlowGraph,
    transformed: FlowGraph,
    seeds: Iterable[int] = range(10),
    max_steps: int = 4000,
) -> None:
    """The paper's performance guarantee: per execution, the transformed
    program runs at most as many assignments as the original."""
    for seed in seeds:
        rng = random.Random(seed)
        decisions = [rng.randint(0, 7) for _ in range(400)]
        env = {name: rng.randint(-4, 4) for name in original.variables()}
        try:
            base = execute(
                original, dict(env), DecisionSequence(decisions), max_steps=max_steps
            )
            new = execute(
                transformed, dict(env), DecisionSequence(decisions), max_steps=max_steps
            )
        except InterpreterError:
            continue
        if base.error is not None or new.error is not None:
            continue
        assert new.total_assignments <= base.total_assignments, (
            f"execution got slower (seed {seed}): "
            f"{base.total_assignments} -> {new.total_assignments}"
        )


def statements_of(graph: FlowGraph, node: str) -> list[str]:
    """Statement texts of one block (readable assertions)."""
    return [str(stmt) for stmt in graph.statements(node)]


def all_statement_texts(graph: FlowGraph) -> list[str]:
    """Every statement text in the program, block order."""
    return [
        str(stmt) for node in graph.nodes() for stmt in graph.statements(node)
    ]
