"""Unit tests for the self-checking optimisation wrapper."""

import pytest

from repro.core import pde
from repro.core.verify import (
    VerificationError,
    verified_pde,
    verified_pfe,
)
from repro.ir.parser import parse_program
from repro.workloads import peel_chain, random_structured_program

FIG1 = """
graph
block s -> 1
block 1 { y := a + b } -> 2, 3
block 2 {} -> 4
block 3 { y := 4 } -> 4
block 4 { out(y) } -> e
block e
"""


class TestVerifiedRuns:
    def test_matches_plain_pde(self):
        plain = pde(parse_program(FIG1))
        checked = verified_pde(parse_program(FIG1))
        assert checked.graph == plain.graph

    def test_report_attached(self):
        result = verified_pde(parse_program(FIG1))
        report = result.verification
        assert report is not None
        assert "admissibility" in report.oracles
        assert "semantics" in report.oracles
        assert "idempotence" in report.oracles
        assert report.replayed_executions > 0

    def test_optimality_oracle_runs_on_small_graphs(self):
        result = verified_pde(parse_program(FIG1))
        assert result.verification.paths_compared
        assert "optimality" in result.verification.oracles

    def test_pfe_variant(self):
        result = verified_pfe(parse_program(FIG1))
        assert result.variant == "pfe"
        assert result.verification is not None

    @pytest.mark.parametrize("seed", range(4))
    def test_random_programs_verify(self, seed):
        result = verified_pde(random_structured_program(seed, size=14))
        assert result.verification is not None

    def test_adversarial_family_verifies(self):
        result = verified_pde(peel_chain(5))
        assert result.stats.rounds == 7
        assert result.verification is not None


class TestVerificationErrorShape:
    def test_error_names_the_oracle(self):
        error = VerificationError("semantics", "details here")
        assert error.oracle == "semantics"
        assert "[semantics]" in str(error)


class TestTheOraclesHaveTeeth:
    """Corrupted results must be rejected, not waved through."""

    @staticmethod
    def _fake_result(original, graph):
        from repro.core.driver import OptimizationResult, OptimizationStats

        return OptimizationResult(
            original=original, graph=graph, stats=OptimizationStats(), variant="pde"
        )

    def test_replay_rejects_changed_outputs(self):
        from repro.core.verify import _replay
        from repro.ir.parser import parse_statement

        original = parse_program(FIG1)
        from repro.ir.splitting import split_critical_edges

        original = split_critical_edges(original)
        corrupted = original.copy()
        corrupted.set_statements("4", [parse_statement("out(y + 1)")])
        with pytest.raises(VerificationError) as info:
            _replay(self._fake_result(original, corrupted), replay_seeds=5)
        assert info.value.oracle == "semantics"

    def test_replay_rejects_introduced_errors(self):
        from repro.core.verify import _replay
        from repro.ir.parser import parse_statement
        from repro.ir.splitting import split_critical_edges

        original = split_critical_edges(parse_program(FIG1))
        corrupted = original.copy()
        corrupted.set_statements(
            "4", [parse_statement("q := 1 / zero"), parse_statement("out(y)")]
        )
        with pytest.raises(VerificationError):
            _replay(self._fake_result(original, corrupted), replay_seeds=5)

    def test_replay_rejects_slower_programs(self):
        from repro.core.verify import _replay
        from repro.ir.parser import parse_statement
        from repro.ir.splitting import split_critical_edges

        original = split_critical_edges(parse_program(FIG1))
        slower = original.copy()
        stmts = list(slower.statements("2"))
        slower.set_statements(
            "2", stmts + [parse_statement("pad := 1"), parse_statement("pad := 2")]
        )
        with pytest.raises(VerificationError) as info:
            _replay(self._fake_result(original, slower), replay_seeds=5)
        assert info.value.oracle == "never-slower"
