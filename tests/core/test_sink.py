"""Unit tests for the assignment sinking step (``ask``, Section 5.3)."""

import pytest

from repro.core.sink import SinkingError, _check_independence, assignment_sinking
from repro.dataflow.patterns import PatternInfo
from repro.ir.parser import parse_program, parse_statement
from repro.ir.splitting import split_critical_edges

from ..helpers import statements_of


def sink(src):
    g = split_critical_edges(parse_program(src))
    report = assignment_sinking(g)
    return g, report


class TestBasicSinking:
    def test_moves_past_a_fork_onto_both_branches(self):
        g, report = sink(
            """
            graph
            block s -> 1
            block 1 { y := a + b } -> 2, 3
            block 2 { out(y) } -> 4
            block 3 { y := 4; out(y) } -> 4
            block 4 {} -> e
            block e
            """
        )
        assert ("1", 0, "y := a + b") in report.removed
        assert statements_of(g, "2")[0] == "y := a + b"  # before the use
        assert statements_of(g, "3")[0] == "y := a + b"  # before the redef
        assert report.changed

    def test_sinks_within_a_block_to_the_end(self):
        g, report = sink(
            """
            graph
            block s -> 1
            block 1 { y := a + b; q := c } -> 2
            block 2 { out(y); out(q) } -> e
            block e
            """
        )
        # Both flow into block 2 (blocked there by the uses).
        assert statements_of(g, "1") == []
        assert statements_of(g, "2")[:2] in (
            ["q := c", "y := a + b"],
            ["y := a + b", "q := c"],
        )

    def test_drops_assignment_delayable_to_the_end(self):
        g, report = sink(
            "graph\nblock s -> 1\nblock 1 { q := 1; out(x) } -> e\nblock e"
        )
        assert ("1", 0, "q := 1") in report.removed
        assert "q := 1" not in statements_of(g, "1") + statements_of(g, "e")

    def test_globals_are_not_dropped(self):
        g, report = sink(
            "graph\nglobals gv;\nblock s -> 1\nblock 1 { gv := a + 1 } -> e\nblock e"
        )
        # The global sinks to the entry of e but survives.
        texts = statements_of(g, "1") + statements_of(g, "e")
        assert "gv := a + 1" in texts

    def test_stable_block_unchanged(self):
        g, report = sink(
            "graph\nblock s -> 1\nblock 1 { x := 1; out(x) } -> e\nblock e"
        )
        assert not report.changed
        assert statements_of(g, "1") == ["x := 1", "out(x)"]


class TestLoopBehaviour:
    def test_never_sinks_into_a_loop(self):
        g, report = sink(
            """
            graph
            block s -> 1
            block 1 { x := a + b } -> 2
            block 2 { q := q + 1 } -> 3
            block 3 {} -> 2, 4
            block 4 { out(x) } -> e
            block e
            """
        )
        # The assignment crosses the loop in one pass: removed from 1,
        # inserted at the entry of 4, never inside 2/3.
        assert "x := a + b" not in statements_of(g, "2") + statements_of(g, "3")
        assert statements_of(g, "4")[0] == "x := a + b"

    def test_in_loop_assignment_moves_to_loop_exit_and_back_edge(self):
        g, report = sink(
            """
            graph
            block s -> 1
            block 1 {} -> 2
            block 2 { x := a + b } -> 3
            block 3 {} -> 2, 4
            block 4 { out(x) } -> e
            block e
            """
        )
        # Removed from the body, reinserted on the back edge (keeping
        # iteration semantics) and before the use at the exit.
        assert statements_of(g, "2") == []
        assert statements_of(g, "S3_2") == ["x := a + b"]
        assert statements_of(g, "4")[0] == "x := a + b"


class TestMToN:
    def test_merges_occurrences_across_a_join(self):
        g, report = sink(
            """
            graph
            block s -> 1, 2
            block 1 { a := a + 1 } -> 3
            block 2 { out(a); a := a + 1 } -> 3
            block 3 { out(a + b) } -> e
            block e
            """
        )
        removed_blocks = {b for (b, _, p) in report.removed if p == "a := a + 1"}
        assert removed_blocks == {"1", "2"}
        inserted = [(b, w) for (b, w, p) in report.inserted if p == "a := a + 1"]
        assert inserted == [("3", "entry")]


class TestIndependence:
    def test_independent_patterns_pass(self):
        infos = [
            PatternInfo.of(parse_statement("x := a + b")),
            PatternInfo.of(parse_statement("y := c + d")),
        ]
        _check_independence(infos, "test")  # must not raise

    def test_same_lhs_conflicts(self):
        infos = [
            PatternInfo.of(parse_statement("x := a")),
            PatternInfo.of(parse_statement("x := b")),
        ]
        with pytest.raises(SinkingError):
            _check_independence(infos, "test")

    def test_def_use_chain_conflicts(self):
        infos = [
            PatternInfo.of(parse_statement("x := a")),
            PatternInfo.of(parse_statement("y := x + 1")),
        ]
        with pytest.raises(SinkingError):
            _check_independence(infos, "test")


class TestReportContents:
    def test_analysis_work_positive(self):
        _g, report = sink(
            "graph\nblock s -> 1\nblock 1 { x := 1; out(x) } -> e\nblock e"
        )
        assert report.analysis_work > 0
