"""Unit tests for chaotic iteration and canonical representatives
(Theorem 3.7)."""

import pytest

from repro.core.chaotic import (
    TRANSFORMATIONS,
    canonicalize,
    chaotic_iterate,
    random_fair_schedule,
)
from repro.core.driver import pde, pfe
from repro.ir.builder import block_statements
from repro.ir.cfg import FlowGraph
from repro.ir.parser import parse_program

FIG10 = """
graph
block s -> 1
block 1 { y := a + b } -> 2
block 2 { a := c } -> 3, 4
block 3 { y := 5 } -> 5
block 4 {} -> 5
block 5 { x := a + c } -> 6
block 6 { out(x + y) } -> e
block e
"""


class TestChaoticIterate:
    def test_round_robin_matches_the_driver(self):
        chaotic = chaotic_iterate(parse_program(FIG10), ("dce", "ask"))
        driver = pde(parse_program(FIG10))
        assert canonicalize(chaotic.graph) == canonicalize(driver.graph)

    def test_ask_first_schedule_matches_too(self):
        chaotic = chaotic_iterate(parse_program(FIG10), ("ask", "dce"))
        driver = pde(parse_program(FIG10))
        assert canonicalize(chaotic.graph) == canonicalize(driver.graph)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_fair_schedules_converge(self, seed):
        family = ("dce", "ask")
        schedule = random_fair_schedule(family, seed)
        chaotic = chaotic_iterate(parse_program(FIG10), family, schedule)
        driver = pde(parse_program(FIG10))
        assert canonicalize(chaotic.graph) == canonicalize(driver.graph)

    @pytest.mark.parametrize("seed", range(4))
    def test_faint_family_converges_to_pfe(self, seed):
        family = ("fce", "ask")
        schedule = random_fair_schedule(family, seed)
        chaotic = chaotic_iterate(parse_program(FIG10), family, schedule)
        driver = pfe(parse_program(FIG10))
        assert canonicalize(chaotic.graph) == canonicalize(driver.graph)

    def test_trace_records_applications(self):
        result = chaotic_iterate(parse_program(FIG10))
        assert result.trace and set(result.trace) <= {"dce", "ask"}
        assert result.effective >= 1

    def test_unknown_family_member_rejected(self):
        with pytest.raises(ValueError):
            chaotic_iterate(parse_program(FIG10), ("dce", "zap"))

    def test_schedule_outside_family_rejected(self):
        with pytest.raises(ValueError):
            chaotic_iterate(parse_program(FIG10), ("dce",), iter(["ask"]))

    def test_transformations_registry_complete(self):
        assert set(TRANSFORMATIONS) == {"dce", "fce", "ask"}


class TestCanonicalize:
    def _block_graph(self, source: str) -> FlowGraph:
        g = FlowGraph()
        g.add_block("1", block_statements(source))
        g.add_edge("s", "1")
        g.add_edge("1", "e")
        return g

    def test_independent_statements_sorted(self):
        g1 = self._block_graph("x := 1; y := 2")
        g2 = self._block_graph("y := 2; x := 1")
        assert canonicalize(g1) == canonicalize(g2)

    def test_dependent_statements_keep_order(self):
        g = self._block_graph("z := 1; q := z + 1")
        canonical = canonicalize(g)
        texts = [str(s) for s in canonical.statements("1")]
        assert texts == ["z := 1", "q := z + 1"]

    def test_write_write_order_preserved(self):
        g = self._block_graph("x := 1; x := 2")
        texts = [str(s) for s in canonicalize(g).statements("1")]
        assert texts == ["x := 1", "x := 2"]

    def test_relevant_statements_keep_mutual_order(self):
        g = self._block_graph("out(b); out(a)")
        texts = [str(s) for s in canonicalize(g).statements("1")]
        assert texts == ["out(b)", "out(a)"]

    def test_assignment_may_move_past_unrelated_out(self):
        g1 = self._block_graph("out(b); x := 1")
        g2 = self._block_graph("x := 1; out(b)")
        assert canonicalize(g1) == canonicalize(g2)

    def test_idempotent(self):
        g = self._block_graph("y := 2; x := 1; out(x + y)")
        once = canonicalize(g)
        assert canonicalize(once) == once

    def test_semantics_preserved(self):
        from ..helpers import assert_semantics_preserved

        g = self._block_graph("y := 2; x := 1; out(x + y); q := x")
        assert_semantics_preserved(g, canonicalize(g))
