"""Unit tests for the global ``pde`` / ``pfe`` driver (Sections 5.1, 5.4)."""

import pytest

from repro.core.driver import NonTermination, optimize, pde, pfe
from repro.ir.parser import parse_program
from repro.ir.validate import validate

from ..helpers import (
    all_statement_texts,
    assert_never_slower,
    assert_semantics_preserved,
)

FIG1 = """
graph
block s -> 1
block 1 { y := a + b } -> 2, 3
block 2 {} -> 4
block 3 { y := 4 } -> 4
block 4 { x := y + 3; out(x) } -> e
block e
"""


class TestPde:
    def test_input_not_mutated(self):
        g = parse_program(FIG1)
        before = g.fingerprint()
        pde(g)
        assert g.fingerprint() == before

    def test_original_is_the_split_program(self):
        g = parse_program(FIG1)
        result = pde(g)
        validate(result.original, require_split=True)
        assert result.original.same_shape(result.graph)

    def test_result_is_stable(self):
        result = pde(parse_program(FIG1))
        again = pde(result.graph)
        assert again.graph == result.graph
        assert again.stats.eliminated == 0

    def test_result_well_formed(self):
        result = pde(parse_program(FIG1))
        validate(result.graph, require_split=True)

    def test_statistics_populated(self):
        result = pde(parse_program(FIG1))
        stats = result.stats
        assert stats.rounds >= 1
        assert stats.component_applications == 2 * stats.rounds
        assert stats.original_instructions == result.original.instruction_count()
        assert stats.final_instructions == result.graph.instruction_count()
        assert stats.peak_instructions >= stats.final_instructions
        assert stats.code_growth_factor >= 1.0
        assert stats.analysis_work > 0
        assert len(stats.history) == stats.rounds

    def test_semantics_preserved_on_figure1(self):
        result = pde(parse_program(FIG1))
        assert assert_semantics_preserved(result.original, result.graph) > 0
        assert_never_slower(result.original, result.graph)

    def test_round_limit_raises(self):
        with pytest.raises(NonTermination):
            pde(parse_program(FIG1), max_rounds=0)

    def test_empty_program(self):
        result = pde(parse_program("skip;"))
        assert result.stats.eliminated == 0

    def test_globals_survive(self):
        result = pde(
            parse_program(
                "graph\nglobals gv;\nblock s -> 1\nblock 1 { gv := a + 1 } -> e\nblock e"
            )
        )
        assert "gv := a + 1" in all_statement_texts(result.graph)


class TestPfe:
    def test_at_least_as_strong_as_pde(self):
        src = """
        graph
        block s -> 1
        block 1 {} -> 2
        block 2 { x := x + 1 } -> 2, 3
        block 3 { out(y) } -> e
        block e
        """
        d = pde(parse_program(src))
        f = pfe(parse_program(src))
        assert f.graph.instruction_count() <= d.graph.instruction_count()
        assert "x := x + 1" not in all_statement_texts(f.graph)

    def test_faint_methods_agree(self):
        src = FIG1
        a = pfe(parse_program(src), faint_method="instruction")
        b = pfe(parse_program(src), faint_method="block")
        c = pfe(parse_program(src), faint_method="slot")
        assert a.graph == b.graph == c.graph


class TestOptimizeDispatch:
    def test_variants(self):
        g = parse_program(FIG1)
        assert optimize(g, "pde").variant == "pde"
        assert optimize(g, "pfe").variant == "pfe"

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            optimize(parse_program(FIG1), "xxx")


class TestSecondOrderCoverage:
    """The four Section 4 effects, end to end."""

    def test_sinking_elimination(self):
        result = pde(parse_program(FIG1))
        # y := a+b no longer executes on the redefining path.
        assert all_statement_texts(result.graph).count("y := a + b") == 1

    def test_sinking_sinking(self):
        result = pde(
            parse_program(
                """
                graph
                block s -> 1
                block 1 { y := a + b } -> 2
                block 2 { a := c } -> 3, 4
                block 3 { y := 5 } -> 5
                block 4 {} -> 5
                block 5 { x := a + c } -> 6
                block 6 { out(x + y) } -> e
                block e
                """
            )
        )
        texts = all_statement_texts(result.graph)
        assert texts.count("y := a + b") == 1
        # y := a+b escaped past the a := c blockade.
        assert [str(s) for s in result.graph.statements("4")] == ["y := a + b"]

    def test_elimination_sinking(self):
        result = pde(
            parse_program(
                """
                graph
                block s -> 1
                block 1 { y := a + b; a := c } -> 2, 3
                block 2 { y := 7 } -> 4
                block 3 {} -> 4
                block 4 { out(y) } -> e
                block e
                """
            )
        )
        texts = all_statement_texts(result.graph)
        assert "a := c" not in texts
        assert [str(s) for s in result.graph.statements("3")] == ["y := a + b"]

    def test_elimination_elimination(self):
        result = pde(
            parse_program(
                """
                graph
                block s -> 1
                block 1 { a := 2 } -> 2
                block 2 {} -> 3, 4
                block 3 {} -> 5
                block 4 { y := a + b } -> 5
                block 5 { y := c + d } -> 6
                block 6 { out(y) } -> e
                block e
                """
            )
        )
        texts = all_statement_texts(result.graph)
        assert "a := 2" not in texts and "y := a + b" not in texts
