"""Unit tests for the elimination step (``dce`` / ``fce``, Section 5.2)."""

from repro.core.eliminate import dead_code_elimination, faint_code_elimination
from repro.ir.parser import parse_program

from ..helpers import all_statement_texts


def graph(src):
    return parse_program(src)


class TestDeadCodeElimination:
    def test_removes_totally_dead_assignment(self):
        g = graph("graph\nblock s -> 1\nblock 1 { q := 1; out(x) } -> e\nblock e")
        report = dead_code_elimination(g)
        assert report.changed and len(report) == 1
        assert report.removed == [("1", 0, "q := 1")]
        assert "q := 1" not in all_statement_texts(g)

    def test_keeps_live_assignment(self):
        g = graph("graph\nblock s -> 1\nblock 1 { x := 1; out(x) } -> e\nblock e")
        report = dead_code_elimination(g)
        assert not report.changed
        assert "x := 1" in all_statement_texts(g)

    def test_keeps_partially_dead_assignment(self):
        g = graph(
            """
            graph
            block s -> 1
            block 1 { y := a + b } -> 2, 3
            block 2 { out(y) } -> 4
            block 3 { y := 4; out(y) } -> 4
            block 4 {} -> e
            block e
            """
        )
        report = dead_code_elimination(g)
        assert not report.changed  # dead on one path only — out of scope

    def test_batch_removal_of_overwritten_chain(self):
        g = graph(
            "graph\nblock s -> 1\nblock 1 { x := 1; x := 2; x := 3; out(x) } -> e\nblock e"
        )
        report = dead_code_elimination(g)
        assert len(report) == 2
        assert all_statement_texts(g) == ["x := 3", "out(x)"]

    def test_second_order_needs_two_passes(self):
        # Figure 12: removing y := a+b exposes the deadness of a := 2.
        g = graph(
            """
            graph
            block s -> 1
            block 1 { a := 2; y := a + b; y := c + d; out(y) } -> e
            block e
            """
        )
        first = dead_code_elimination(g)
        assert [p for (_, _, p) in first.removed] == ["y := a + b"]
        second = dead_code_elimination(g)
        assert [p for (_, _, p) in second.removed] == ["a := 2"]
        third = dead_code_elimination(g)
        assert not third.changed

    def test_keeps_self_increment_in_loop(self):
        g = graph(
            """
            graph
            block s -> 1
            block 1 {} -> 2
            block 2 { x := x + 1 } -> 2, 3
            block 3 { out(y) } -> e
            block e
            """
        )
        assert not dead_code_elimination(g).changed

    def test_keeps_global_assignments(self):
        g = graph(
            "graph\nglobals gv;\nblock s -> 1\nblock 1 { gv := 1 } -> e\nblock e"
        )
        assert not dead_code_elimination(g).changed

    def test_analysis_work_reported(self):
        g = graph("graph\nblock s -> 1\nblock 1 { q := 1 } -> e\nblock e")
        assert dead_code_elimination(g).analysis_work > 0


class TestFaintCodeElimination:
    def test_removes_faint_loop_increment(self):
        g = graph(
            """
            graph
            block s -> 1
            block 1 {} -> 2
            block 2 { x := x + 1 } -> 2, 3
            block 3 { out(y) } -> e
            block e
            """
        )
        report = faint_code_elimination(g)
        assert [p for (_, _, p) in report.removed] == ["x := x + 1"]

    def test_removes_mutually_useless_pair_in_one_pass(self):
        # Figure 12 is first-order for faint code elimination.
        g = graph(
            """
            graph
            block s -> 1
            block 1 { a := 2; y := a + b; y := c + d; out(y) } -> e
            block e
            """
        )
        report = faint_code_elimination(g)
        assert sorted(p for (_, _, p) in report.removed) == ["a := 2", "y := a + b"]
        assert not faint_code_elimination(g).changed

    def test_block_method_gives_same_result(self):
        src = """
        graph
        block s -> 1
        block 1 { a := 2; y := a + b; y := c + d; out(y) } -> e
        block e
        """
        g1, g2 = graph(src), graph(src)
        faint_code_elimination(g1, method="instruction")
        faint_code_elimination(g2, method="block")
        assert g1 == g2

    def test_strictly_stronger_than_dce(self):
        src = """
        graph
        block s -> 1
        block 1 {} -> 2
        block 2 { x := x + 1 } -> 2, 3
        block 3 { out(y) } -> e
        block e
        """
        g_dce, g_fce = graph(src), graph(src)
        dead_code_elimination(g_dce)
        faint_code_elimination(g_fce)
        assert g_dce.instruction_count() > g_fce.instruction_count()
