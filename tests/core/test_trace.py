"""Unit tests for the driver's trace mode."""

from repro.core import pde, pfe
from repro.ir.parser import parse_program

FIG1 = """
graph
block s -> 1
block 1 { y := a + b } -> 2, 3
block 2 {} -> 4
block 3 { y := 4 } -> 4
block 4 { out(y) } -> e
block e
"""


class TestTrace:
    def test_snapshots_absent_by_default(self):
        result = pde(parse_program(FIG1))
        assert all(
            record.after_elimination is None and record.after_sinking is None
            for record in result.stats.history
        )

    def test_snapshots_present_with_trace(self):
        result = pde(parse_program(FIG1), trace=True)
        assert result.stats.history
        for record in result.stats.history:
            assert record.after_elimination is not None
            assert record.after_sinking is not None

    def test_last_snapshot_is_the_result(self):
        result = pde(parse_program(FIG1), trace=True)
        assert result.stats.history[-1].after_sinking == result.graph

    def test_snapshots_chain_consistently(self):
        result = pde(parse_program(FIG1), trace=True)
        previous = result.original
        for record in result.stats.history:
            # Elimination only removes; sinking moves.
            assert (
                record.after_elimination.instruction_count()
                <= previous.instruction_count()
            )
            previous = record.after_sinking

    def test_trace_does_not_change_the_result(self):
        plain = pde(parse_program(FIG1))
        traced = pde(parse_program(FIG1), trace=True)
        assert plain.graph == traced.graph

    def test_pfe_trace(self):
        result = pfe(parse_program(FIG1), trace=True)
        assert result.stats.history[-1].after_sinking == result.graph
