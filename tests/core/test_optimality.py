"""Unit tests for the Definition 3.6 'better' pre-order."""

import pytest

from repro.core.driver import pde
from repro.core.optimality import (
    compare,
    is_better_or_equal,
    path_pattern_counts,
    total_executable_statements,
)
from repro.ir.parser import parse_program
from repro.ir.splitting import split_critical_edges

FIG1 = """
graph
block s -> 1
block 1 { y := a + b } -> 2, 3
block 2 {} -> 4
block 3 { y := 4 } -> 4
block 4 { x := y + 3; out(x) } -> e
block e
"""


class TestPathPatternCounts:
    def test_counts_occurrences_along_path(self):
        g = parse_program(FIG1)
        counts = path_pattern_counts(g, ("s", "1", "3", "4", "e"))
        assert counts == {"y := a + b": 1, "y := 4": 1, "x := y + 3": 1}

    def test_multiplicity_counted(self):
        g = parse_program(FIG1)
        counts = path_pattern_counts(g, ("1", "1"))
        assert counts["y := a + b"] == 2


class TestCompare:
    def test_program_equivalent_to_itself(self):
        g = split_critical_edges(parse_program(FIG1))
        outcome = compare(g, g)
        assert outcome.equivalent

    def test_pde_result_strictly_better_than_original(self):
        result = pde(parse_program(FIG1))
        outcome = compare(result.graph, result.original)
        assert outcome.strictly_better
        assert is_better_or_equal(result.graph, result.original)
        assert not is_better_or_equal(result.original, result.graph)

    def test_witness_produced_for_the_worse_program(self):
        result = pde(parse_program(FIG1))
        outcome = compare(result.original, result.graph)
        assert not outcome.first_better_or_equal
        path, pattern, a, b = outcome.witness
        assert pattern == "y := a + b" and a > b

    def test_incomparable_programs(self):
        g1 = split_critical_edges(parse_program(FIG1))
        g2 = g1.copy()
        # Swap work between branches: 2 gains a pattern, 3 loses one.
        from repro.ir.parser import parse_statement

        g2.set_statements("2", [parse_statement("q := 1")])
        g2.set_statements("3", [])
        outcome = compare(g1, g2)
        assert not outcome.first_better_or_equal
        assert not outcome.second_better_or_equal

    def test_different_shapes_rejected(self):
        g1 = parse_program(FIG1)
        g2 = parse_program(FIG1)
        g2.add_block("extra")
        g2.add_edge("4", "extra")
        g2.add_edge("extra", "e")
        with pytest.raises(ValueError):
            compare(g1, g2)


class TestDynamicCounts:
    def test_total_executable_statements_drop_after_pde(self):
        result = pde(parse_program(FIG1))
        before = total_executable_statements(result.original)
        after = total_executable_statements(result.graph)
        assert len(before) == len(after)  # same path family
        assert all(a <= b for a, b in zip(after, before))
        assert sum(after) < sum(before)
