"""Unit tests for the executable Definition 3.2 admissibility check."""

import pytest

from repro.core.admissibility import (
    AdmissibilityViolation,
    check_sinking_admissible,
)
from repro.core.sink import SinkingReport, assignment_sinking
from repro.ir.parser import parse_program
from repro.ir.splitting import split_critical_edges


def run_pass(src):
    before = split_critical_edges(parse_program(src))
    work = before.copy()
    report = assignment_sinking(work)
    return before, work, report


FIG1 = """
graph
block s -> 1
block 1 { y := a + b } -> 2, 3
block 2 {} -> 4
block 3 { y := 4 } -> 4
block 4 { out(y) } -> e
block e
"""


class TestRealPassesAreAdmissible:
    @pytest.mark.parametrize(
        "src",
        [
            FIG1,
            # in-loop assignment: back-edge + exit insertions
            """
            graph
            block s -> 1
            block 1 {} -> 2
            block 2 { x := a + b } -> 3
            block 3 {} -> 2, 4
            block 4 { out(x) } -> e
            block e
            """,
            # m-to-n fusion
            """
            graph
            block s -> 1, 2
            block 1 { a := a + 1 } -> 3
            block 2 { out(a); a := a + 1 } -> 3
            block 3 { out(a + b) } -> e
            block e
            """,
            # drop off the end
            "graph\nblock s -> 1\nblock 1 { q := 1; out(x) } -> e\nblock e",
            # global sunk to the end node
            "graph\nglobals gv;\nblock s -> 1\nblock 1 { gv := a + 1 } -> e\nblock e",
        ],
    )
    def test_ask_pass_is_admissible(self, src):
        before, _work, report = run_pass(src)
        check_sinking_admissible(before, report)  # must not raise


class TestViolationsDetected:
    def test_unsubstituted_removal_detected(self):
        before = split_critical_edges(parse_program(FIG1))
        # Claim we removed y := a+b but inserted nothing: the use at
        # node 4 (via 2) is no longer fed — not substituted.
        report = SinkingReport(removed=[("1", 0, "y := a + b")], inserted=[])
        with pytest.raises(AdmissibilityViolation, match="not substituted"):
            check_sinking_admissible(before, report)

    def test_unjustified_insertion_detected(self):
        before = split_critical_edges(parse_program(FIG1))
        # Insertion at node 3's entry without any removal anywhere.
        report = SinkingReport(
            removed=[], inserted=[("3", "entry", "y := a + b")]
        )
        with pytest.raises(AdmissibilityViolation, match="not justified"):
            check_sinking_admissible(before, report)

    def test_global_dropped_off_the_end_detected(self):
        before = split_critical_edges(
            parse_program(
                "graph\nglobals gv;\nblock s -> 1\nblock 1 { gv := a + 1 } -> e\nblock e"
            )
        )
        report = SinkingReport(removed=[("1", 0, "gv := a + 1")], inserted=[])
        with pytest.raises(AdmissibilityViolation, match="not substituted"):
            check_sinking_admissible(before, report)

    def test_bogus_removal_record_detected(self):
        before = split_critical_edges(parse_program(FIG1))
        report = SinkingReport(removed=[("2", 0, "y := a + b")], inserted=[])
        with pytest.raises(AdmissibilityViolation, match="does not point"):
            check_sinking_admissible(before, report)

    def test_nonglobal_dropped_off_the_end_is_fine(self):
        before = split_critical_edges(
            parse_program("graph\nblock s -> 1\nblock 1 { q := 1 } -> e\nblock e")
        )
        report = SinkingReport(removed=[("1", 0, "q := 1")], inserted=[])
        check_sinking_admissible(before, report)  # unused on all paths
