"""Unit tests for the workload generators."""

import pytest

from repro.ir.validate import validate
from repro.workloads import (
    diamond_chain,
    irreducible_mesh,
    loop_chain,
    random_arbitrary_graph,
    random_structured_program,
)


class TestRandomStructured:
    @pytest.mark.parametrize("seed", range(10))
    def test_well_formed(self, seed):
        validate(random_structured_program(seed, size=20), strict=True)

    def test_deterministic_per_seed(self):
        assert random_structured_program(5) == random_structured_program(5)

    def test_different_seeds_differ(self):
        assert random_structured_program(1) != random_structured_program(2)

    def test_size_scales(self):
        small = random_structured_program(0, size=5)
        large = random_structured_program(0, size=60)
        assert large.instruction_count() > small.instruction_count()

    def test_has_relevant_statements(self):
        g = random_structured_program(3, size=10)
        assert any(
            stmt.is_relevant()
            for node in g.nodes()
            for stmt in g.statements(node)
        )


class TestRandomArbitrary:
    @pytest.mark.parametrize("seed", range(10))
    def test_well_formed(self, seed):
        validate(random_arbitrary_graph(seed, n_blocks=9), strict=True)

    def test_deterministic_per_seed(self):
        assert random_arbitrary_graph(4) == random_arbitrary_graph(4)

    def test_block_count_respected(self):
        g = random_arbitrary_graph(0, n_blocks=12)
        assert len(g) == 14  # 12 + s + e

    def test_extra_edges_added(self):
        sparse = random_arbitrary_graph(0, n_blocks=10, extra_edges=0)
        dense = random_arbitrary_graph(0, n_blocks=10, extra_edges=15)
        assert len(list(dense.edges())) > len(list(sparse.edges()))

    def test_often_irreducible(self):
        # At least one seed in a small range yields a cycle that is not
        # single-entry (irreducible) — the case structured methods miss.
        from repro.ir.dominance import dominators

        found = False
        for seed in range(12):
            g = random_arbitrary_graph(seed, n_blocks=8)
            dom = dominators(g)
            for src, dst in g.edges():
                # A retreating edge whose target does not dominate its
                # source indicates irreducibility.
                if dst in dom and dst not in dom[src] and src in dom:
                    # is (src,dst) part of a cycle?
                    stack, seen = [dst], set()
                    while stack:
                        n = stack.pop()
                        if n == src:
                            found = True
                            break
                        if n in seen:
                            continue
                        seen.add(n)
                        stack.extend(g.successors(n))
                if found:
                    break
            if found:
                break
        assert found


class TestDeterministicFamilies:
    @pytest.mark.parametrize("k", [1, 3, 8])
    def test_diamond_chain_well_formed(self, k):
        validate(diamond_chain(k), strict=True)

    def test_diamond_chain_scales_linearly(self):
        small, large = diamond_chain(5), diamond_chain(10)
        assert large.instruction_count() == pytest.approx(
            2 * small.instruction_count(), abs=4
        )

    @pytest.mark.parametrize("k", [1, 3, 6])
    def test_loop_chain_well_formed(self, k):
        validate(loop_chain(k), strict=True)

    def test_diamond_chain_offers_pde_work(self):
        from repro.core import pde

        result = pde(diamond_chain(6))
        assert result.stats.eliminated > 0 or result.stats.sunk_removed > 0
        assert result.graph.instruction_count() < result.original.instruction_count()

    def test_loop_chain_drains_loops(self):
        from repro.core import pde

        result = pde(loop_chain(4))
        # Every loop body block ends up empty.
        for k in range(1, 5):
            assert result.graph.statements(f"b{k}") == ()

    @pytest.mark.parametrize("k", [1, 2, 5])
    def test_irreducible_mesh_well_formed(self, k):
        validate(irreducible_mesh(k), strict=True)

    def test_irreducible_mesh_is_actually_irreducible(self):
        from repro.ir.dominance import dominators

        g = irreducible_mesh(1)
        dom = dominators(g)
        # The two loop nodes do not dominate each other: two entries.
        assert "l1" not in dom["r1"] and "r1" not in dom["l1"]
        assert "l1" in g.successors("r1") and "r1" in g.successors("l1")

    def test_irreducible_mesh_assignments_cross_their_loops(self):
        from repro.core import pde

        result = pde(irreducible_mesh(3))
        for k in (1, 2, 3):
            assert result.graph.statements(f"h{k}") == ()
            texts = [str(s) for s in result.graph.statements(f"x{k}")]
            assert texts[0] == f"v := w + {k}"

    @pytest.mark.parametrize("k", [1, 4, 9])
    def test_peel_chain_well_formed(self, k):
        from repro.workloads import peel_chain

        validate(peel_chain(k), strict=True)

    def test_peel_chain_needs_linear_rounds(self):
        from repro.core import pde
        from repro.workloads import peel_chain

        for depth in (2, 5, 9):
            result = pde(peel_chain(depth))
            assert result.stats.rounds == depth + 2, depth
            # The whole chain migrated onto the using branch.
            assert len(result.graph.statements("user")) == depth + 1
            assert result.graph.statements("chain") == ()
