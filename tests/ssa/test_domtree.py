"""Unit tests for dominator trees and dominance frontiers."""

from repro.ir.parser import parse_program
from repro.ssa.domtree import DominatorTree, dominance_frontiers

DIAMOND = parse_program(
    """
    graph
    block s -> 1
    block 1 {} -> 2, 3
    block 2 {} -> 4
    block 3 {} -> 4
    block 4 { out(x) } -> e
    block e
    """
)

LOOP = parse_program(
    """
    graph
    block s -> 1
    block 1 {} -> 2
    block 2 {} -> 3
    block 3 {} -> 2, 4
    block 4 { out(x) } -> e
    block e
    """
)


class TestDominatorTree:
    def test_idom_chain_in_diamond(self):
        tree = DominatorTree(DIAMOND)
        assert tree.idom["1"] == "s"
        assert tree.idom["2"] == "1" and tree.idom["3"] == "1"
        assert tree.idom["4"] == "1"  # neither branch dominates the join
        assert tree.idom["s"] is None

    def test_children_sorted(self):
        tree = DominatorTree(DIAMOND)
        assert tree.children["1"] == ["2", "3", "4"]

    def test_preorder_starts_at_s_and_covers_all(self):
        tree = DominatorTree(DIAMOND)
        order = tree.preorder()
        assert order[0] == "s"
        assert set(order) == set(DIAMOND.nodes())
        # Parents precede children.
        position = {node: i for i, node in enumerate(order)}
        for parent, kids in tree.children.items():
            for kid in kids:
                assert position[parent] < position[kid]

    def test_dominates(self):
        tree = DominatorTree(LOOP)
        assert tree.dominates("2", "3")
        assert tree.strictly_dominates("2", "3")
        assert not tree.strictly_dominates("3", "2")
        assert not tree.strictly_dominates("2", "2")


class TestDominanceFrontiers:
    def test_diamond_frontier_is_the_join(self):
        frontiers = dominance_frontiers(DIAMOND)
        assert frontiers["2"] == frozenset({"4"})
        assert frontiers["3"] == frozenset({"4"})
        assert frontiers["4"] == frozenset()
        assert frontiers["1"] == frozenset()

    def test_loop_header_in_its_own_frontier(self):
        frontiers = dominance_frontiers(LOOP)
        assert "2" in frontiers["3"]  # back edge source
        assert "2" in frontiers["2"]  # the header is in its own frontier

    def test_irreducible_graph(self):
        g = parse_program(
            """
            graph
            block s -> 0
            block 0 {} -> 1, 2
            block 1 {} -> 2
            block 2 {} -> 1, 3
            block 3 { out(x) } -> e
            block e
            """
        )
        frontiers = dominance_frontiers(g)
        # Both loop nodes sit in each other's frontier (two-entry loop).
        assert "2" in frontiers["1"]
        assert "1" in frontiers["2"]
