"""Unit tests for SSA dead code elimination and out-of-SSA translation."""

import pytest

from repro.baselines import fce_only, ssa_dce
from repro.ir.parser import parse_program
from repro.ir.splitting import split_critical_edges
from repro.ssa import Phi, construct_ssa, destruct, ssa_dead_code_elimination
from repro.workloads import random_arbitrary_graph, random_structured_program

from ..helpers import all_statement_texts, assert_semantics_preserved

FIG9 = """
graph
block s -> 1
block 1 {} -> 2
block 2 { x := x + 1 } -> 2, 3
block 3 { out(y) } -> e
block e
"""


class TestSSADce:
    def test_removes_faint_loop_increment(self):
        res = ssa_dce(parse_program(FIG9))
        assert not any("x" in t and ":=" in t for t in all_statement_texts(res.graph))
        assert res.eliminated >= 1

    def test_keeps_live_chain(self):
        res = ssa_dce(
            parse_program(
                "graph\nblock s -> 1\nblock 1 { a := 1; b := a + 1; out(b) } -> e\nblock e"
            )
        )
        texts = all_statement_texts(res.graph)
        assert any("a%1 := 1" in t for t in texts)
        assert any(":= a%1 + 1" in t for t in texts)

    def test_keeps_globals(self):
        res = ssa_dce(
            parse_program(
                "graph\nglobals gv;\nblock s -> 1\nblock 1 { gv := 1 } -> e\nblock e"
            )
        )
        assert any("gv%1 := 1" in t for t in all_statement_texts(res.graph))

    def test_dead_phi_cycle_removed(self):
        # A loop-carried variable feeding only itself: φ and increment
        # form a dead cycle the optimistic marking never reaches.
        res = ssa_dce(
            parse_program(
                """
                graph
                block s -> 1
                block 1 { i := 0 } -> 2
                block 2 { i := i + 1 } -> 2, 3
                block 3 { out(q) } -> e
                block e
                """
            )
        )
        assert not any("i" in t and ":=" in t for t in all_statement_texts(res.graph))

    def test_edge_traversal_counted(self):
        res = ssa_dce(
            parse_program(
                "graph\nblock s -> 1\nblock 1 { a := 1; b := a + 1; out(b) } -> e\nblock e"
            )
        )
        assert res.edges_traversed >= 2


class TestSparsity:
    def test_ssa_defuse_sparser_than_dense_graph(self):
        """The Section 5.2 point: many defs × many uses explode the dense
        def-use graph; SSA routes them through one φ."""
        from repro.baselines import build_def_use_graph
        from repro.ir.builder import GraphBuilder

        def many(defs, uses):
            builder = GraphBuilder()
            builder.block("fork")
            builder.edge("s", "fork")
            for k in range(defs):
                builder.block(f"d{k}", f"x := {k};")
                builder.edge("fork", f"d{k}")
                builder.edge(f"d{k}", "join")
            builder.block("join", " ".join("out(x);" for _ in range(uses)))
            builder.edge("join", "e")
            return builder.build()

        graph = many(8, 8)
        dense = build_def_use_graph(split_critical_edges(graph))
        res = ssa_dce(graph)
        assert dense.edge_count == 64
        # SSA: 8 φ-arg edges + 8 uses of the φ output ≈ linear.
        assert res.edges_traversed <= 3 * 16


class TestDestruct:
    def test_phis_become_predecessor_copies(self):
        program = construct_ssa(
            split_critical_edges(
                parse_program(
                    """
                    graph
                    block s -> 1
                    block 1 {} -> 2, 3
                    block 2 { x := 1 } -> 4
                    block 3 { x := 2 } -> 4
                    block 4 { out(x) } -> e
                    block e
                    """
                )
            )
        )
        lowered = destruct(program.graph)
        assert not any(
            isinstance(stmt, Phi)
            for node in lowered.nodes()
            for stmt in lowered.statements(node)
        )
        # Copies landed in both branch blocks.
        assert any("x%" in t for t in [str(s) for s in lowered.statements("2")])
        assert any("x%" in t for t in [str(s) for s in lowered.statements("3")])

    def test_copies_inserted_before_trailing_branch(self):
        program = construct_ssa(
            split_critical_edges(
                parse_program(
                    """
                    graph
                    block s -> 1
                    block 1 { i := 0 } -> 2
                    block 2 { branch i > 0 } -> 3, 4
                    block 3 { i := i + 1 } -> 2
                    block 4 { out(i) } -> e
                    block e
                    """
                )
            )
        )
        lowered = destruct(program.graph)
        for node in lowered.nodes():
            statements = lowered.statements(node)
            for index, stmt in enumerate(statements):
                if stmt.__class__.__name__ == "Branch":
                    assert index == len(statements) - 1, node


class TestEndToEndSemantics:
    @pytest.mark.parametrize("seed", range(10))
    def test_pipeline_preserves_semantics_structured(self, seed):
        g = random_structured_program(seed, size=14)
        res = ssa_dce(g)
        assert_semantics_preserved(res.original, res.graph, seeds=range(5))

    @pytest.mark.parametrize("seed", range(10))
    def test_pipeline_preserves_semantics_arbitrary(self, seed):
        g = random_arbitrary_graph(seed, n_blocks=8)
        res = ssa_dce(g)
        assert_semantics_preserved(res.original, res.graph, seeds=range(5))

    @pytest.mark.parametrize("seed", range(8))
    def test_power_matches_fce_on_real_assignments(self, seed):
        """SSA DCE keeps exactly the computations fce keeps (copies from
        φ-lowering aside): compare the surviving *expression* patterns."""
        g = random_structured_program(seed, size=14)
        via_ssa = ssa_dce(g)
        via_fce = fce_only(g)

        def expression_multiset(graph):
            from repro.ssa.construct import base_name
            from repro.ir.stmts import Assign
            kept = []
            for node in graph.nodes():
                for stmt in graph.statements(node):
                    if isinstance(stmt, Assign) and not _is_copy(stmt):
                        kept.append(_debased(stmt))
            kept.sort()
            return kept

        def _is_copy(stmt):
            from repro.ir.exprs import Var
            return isinstance(stmt.rhs, Var)

        def _debased(stmt):
            from repro.ssa.construct import base_name
            import re
            return re.sub(r"%\d+", "", str(stmt))

        assert expression_multiset(via_ssa.graph) == expression_multiset(
            via_fce.graph
        )
