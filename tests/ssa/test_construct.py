"""Unit tests for SSA construction."""

import pytest

from repro.ir.parser import parse_program
from repro.ir.splitting import split_critical_edges
from repro.ir.stmts import Assign
from repro.ssa.construct import Phi, base_name, construct_ssa, versioned
from repro.workloads import random_arbitrary_graph, random_structured_program

from ..helpers import assert_semantics_preserved


def ssa_of(src):
    return construct_ssa(split_critical_edges(parse_program(src)))


class TestNames:
    def test_versioned_and_base(self):
        assert versioned("x", 3) == "x%3"
        assert base_name("x%3") == "x"
        assert base_name("plain") == "plain"


class TestSingleAssignmentProperty:
    @pytest.mark.parametrize("seed", range(8))
    def test_every_name_defined_once(self, seed):
        graph = split_critical_edges(random_structured_program(seed, size=16))
        program = construct_ssa(graph.copy())
        defined = []
        for node in program.graph.nodes():
            for stmt in program.graph.statements(node):
                modified = stmt.modified()
                if modified is not None:
                    defined.append(modified)
        assert len(defined) == len(set(defined))

    @pytest.mark.parametrize("seed", range(8))
    def test_arbitrary_graphs_too(self, seed):
        graph = split_critical_edges(random_arbitrary_graph(seed, n_blocks=8))
        program = construct_ssa(graph.copy())
        defined = [
            stmt.modified()
            for node in program.graph.nodes()
            for stmt in program.graph.statements(node)
            if stmt.modified() is not None
        ]
        assert len(defined) == len(set(defined))


class TestPhiPlacement:
    def test_join_gets_phi_for_branch_defined_variable(self):
        program = ssa_of(
            """
            graph
            block s -> 1
            block 1 {} -> 2, 3
            block 2 { x := 1 } -> 4
            block 3 { x := 2 } -> 4
            block 4 { out(x) } -> e
            block e
            """
        )
        phis = [
            stmt
            for stmt in program.graph.statements("4")
            if isinstance(stmt, Phi)
        ]
        assert len(phis) == 1
        assert base_name(phis[0].lhs) == "x"
        args = dict(phis[0].args)
        assert base_name(args["2"]) == "x" and base_name(args["3"]) == "x"
        assert args["2"] != args["3"]

    def test_undefined_path_contributes_the_initial_version(self):
        program = ssa_of(
            """
            graph
            block s -> 1
            block 1 {} -> 2, 3
            block 2 { x := 1 } -> 4
            block 3 {} -> 4
            block 4 { out(x) } -> e
            block e
            """
        )
        phi = next(
            stmt for stmt in program.graph.statements("4") if isinstance(stmt, Phi)
        )
        args = dict(phi.args)
        assert args["3"] == "x"  # the implicit initial version

    def test_loop_variable_gets_header_phi(self):
        program = ssa_of(
            """
            graph
            block s -> 1
            block 1 { i := 0 } -> 2
            block 2 { i := i + 1 } -> 2, 3
            block 3 { out(i) } -> e
            block e
            """
        )
        phis = [
            stmt
            for stmt in program.graph.statements("2")
            if isinstance(stmt, Phi) and base_name(stmt.lhs) == "i"
        ]
        assert len(phis) == 1

    def test_no_phi_without_joins(self):
        program = ssa_of("graph\nblock s -> 1\nblock 1 { x := 1; out(x) } -> e\nblock e")
        assert program.phi_count == 0

    def test_uses_renamed_to_reaching_versions(self):
        program = ssa_of(
            "graph\nblock s -> 1\nblock 1 { x := 1; x := 2; out(x) } -> e\nblock e"
        )
        statements = program.graph.statements("1")
        assert isinstance(statements[0], Assign) and statements[0].lhs == "x%1"
        assert statements[1].lhs == "x%2"
        assert str(statements[2]) == "out(x%2)"

    def test_exit_versions_track_globals(self):
        program = ssa_of(
            "graph\nglobals gv;\nblock s -> 1\nblock 1 { gv := 1; gv := 2 } -> e\nblock e"
        )
        assert base_name(program.exit_versions["gv"]) == "gv"
        assert program.exit_versions["gv"] == "gv%2"


class TestPhiStatementProtocol:
    def test_phi_local_predicates(self):
        phi = Phi("x%3", (("p", "x%1"), ("q", "x%2")))
        assert phi.modified() == "x%3"
        assert phi.used() == frozenset({"x%1", "x%2"})
        assert phi.assign_used() == phi.used()
        assert not phi.is_relevant()
        assert "φ" in str(phi)
