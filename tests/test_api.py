"""The public API surface: everything advertised is importable and the
package metadata is consistent."""

import importlib

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.ir",
    "repro.dataflow",
    "repro.core",
    "repro.baselines",
    "repro.lcm",
    "repro.ssa",
    "repro.passes",
    "repro.interp",
    "repro.figures",
    "repro.workloads",
    "repro.cli",
]


class TestPublicSurface:
    @pytest.mark.parametrize("name", PACKAGES)
    def test_package_imports(self, name):
        importlib.import_module(name)

    @pytest.mark.parametrize("name", PACKAGES[:-1])
    def test_all_entries_resolve(self, name):
        module = importlib.import_module(name)
        for entry in getattr(module, "__all__", ()):
            assert hasattr(module, entry), f"{name}.__all__ lists missing {entry!r}"

    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_top_level_workflow(self):
        """The README quickstart, condensed."""
        program = repro.parse_program("y := a + b; if ? { out(y); } else { y := 4; }")
        result = repro.pde(program)
        assert result.graph.instruction_count() <= result.original.instruction_count()
        text = repro.format_side_by_side(result.original, result.graph)
        assert "before" in text and "after" in text

    def test_py_typed_marker_shipped(self):
        import pathlib

        package_dir = pathlib.Path(repro.__file__).parent
        assert (package_dir / "py.typed").exists()
