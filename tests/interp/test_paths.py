"""Unit tests for path enumeration."""

import pytest

from repro.interp.paths import count_pattern_on_path, enumerate_paths
from repro.ir.parser import parse_program

DIAMOND = parse_program(
    """
    graph
    block s -> 1
    block 1 { y := a + b } -> 2, 3
    block 2 {} -> 4
    block 3 {} -> 4
    block 4 { out(y) } -> e
    block e
    """
)

LOOP = parse_program(
    """
    graph
    block s -> 1
    block 1 {} -> 2
    block 2 { x := x + 1 } -> 3
    block 3 {} -> 2, 4
    block 4 { out(x) } -> e
    block e
    """
)


class TestEnumeratePaths:
    def test_diamond_has_two_paths(self):
        paths = list(enumerate_paths(DIAMOND, 1))
        assert len(paths) == 2
        assert all(p[0] == "s" and p[-1] == "e" for p in paths)

    def test_loop_paths_bounded_by_edge_repeats(self):
        # The body uses edge (2,3) once per iteration, so k edge repeats
        # allow exactly k loop executions: k paths plus none beyond.
        assert len(list(enumerate_paths(LOOP, 1))) == 1
        assert len(list(enumerate_paths(LOOP, 2))) == 2
        assert len(list(enumerate_paths(LOOP, 3))) == 3

    def test_paths_are_genuine_walks(self):
        for path in enumerate_paths(LOOP, 2):
            for src, dst in zip(path, path[1:]):
                assert dst in LOOP.successors(src)

    def test_limit_guard(self):
        with pytest.raises(RuntimeError):
            list(enumerate_paths(LOOP, 2, limit=1))


class TestCountPatternOnPath:
    def test_counts_loop_iterations(self):
        paths = sorted(enumerate_paths(LOOP, 3), key=len)
        counts = [count_pattern_on_path(LOOP, p, "x := x + 1") for p in paths]
        assert counts == [1, 2, 3]

    def test_zero_for_absent_pattern(self):
        path = next(iter(enumerate_paths(DIAMOND, 1)))
        assert count_pattern_on_path(DIAMOND, path, "zz := 1") == 0
