"""Unit tests for the Monte-Carlo profiler."""

from repro.core import pde
from repro.interp.profile import collect_profile, expected_cost, hottest_blocks
from repro.ir.parser import parse_program

LOOPY = """
graph
block s -> 1
block 1 { x := a + b } -> 2
block 2 { q := q + 1 } -> 2, 3
block 3 { out(x) } -> e
block e
"""


class TestCollectProfile:
    def test_deterministic_per_seed(self):
        g = parse_program(LOOPY)
        a = collect_profile(g, trials=50, seed=3)
        b = collect_profile(g, trials=50, seed=3)
        assert a.total_assignments == b.total_assignments
        assert a.block_visits == b.block_visits

    def test_different_seeds_differ(self):
        g = parse_program(LOOPY)
        a = collect_profile(g, trials=50, seed=1)
        b = collect_profile(g, trials=50, seed=2)
        assert a.total_assignments != b.total_assignments

    def test_counts_runs_and_skips(self):
        g = parse_program(LOOPY)
        profile = collect_profile(g, trials=30, seed=0)
        assert profile.runs + profile.skipped == 30
        assert profile.runs > 0

    def test_per_pattern_counts(self):
        g = parse_program(LOOPY)
        profile = collect_profile(g, trials=30, seed=0)
        # x := a+b executes exactly once per completed run.
        assert profile.per_pattern["x := a + b"] == profile.runs

    def test_loop_block_hotter_than_straight_line(self):
        g = parse_program(LOOPY)
        profile = collect_profile(g, trials=60, seed=0)
        assert profile.frequency("2") > profile.frequency("1")

    def test_empty_profile_mean_is_zero(self):
        from repro.interp.profile import Profile

        assert Profile().mean_assignments == 0.0
        assert Profile().frequency("x") == 0.0


class TestExpectedCost:
    def test_pde_never_increases_expected_cost(self):
        g = parse_program(LOOPY)
        result = pde(g)
        before = expected_cost(result.original, trials=60, seed=5)
        after = expected_cost(result.graph, trials=60, seed=5)
        assert after <= before

    def test_partially_dead_program_improves(self):
        g = parse_program(
            """
            graph
            block s -> 1
            block 1 { y := a + b } -> 2, 3
            block 2 {} -> 4
            block 3 { y := 4 } -> 4
            block 4 { out(y) } -> e
            block e
            """
        )
        result = pde(g)
        before = expected_cost(result.original, trials=80, seed=5)
        after = expected_cost(result.graph, trials=80, seed=5)
        assert after < before  # half the paths skip y := a+b now


class TestHottestBlocks:
    def test_loop_body_ranks_first(self):
        g = parse_program(LOOPY)
        ranked = hottest_blocks(g, top=2, trials=40, seed=0)
        assert ranked[0][0] == "2"

    def test_excludes_start_and_end(self):
        g = parse_program(LOOPY)
        names = [name for name, _freq in hottest_blocks(g, top=10, trials=20)]
        assert "s" not in names and "e" not in names
