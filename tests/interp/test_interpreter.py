"""Unit tests for the reference interpreter."""

import pytest

from repro.interp.interpreter import (
    DecisionSequence,
    InterpreterError,
    execute,
)
from repro.ir.parser import parse_program


class TestStraightLine:
    def test_outputs_in_order(self):
        g = parse_program("x := 2; out(x); out(x + 1);")
        run = execute(g)
        assert run.outputs == [2, 3]

    def test_env_defaults_to_zero(self):
        run = execute(parse_program("out(a + b);"))
        assert run.outputs == [0]

    def test_initial_env_respected(self):
        run = execute(parse_program("out(a + b);"), env={"a": 2, "b": 3})
        assert run.outputs == [5]

    def test_executed_counts_per_pattern(self):
        g = parse_program("x := 1; x := 1; y := 2; out(x);")
        run = execute(g)
        assert run.executed == {"x := 1": 2, "y := 2": 1}
        assert run.total_assignments == 3

    def test_trace_records_blocks(self):
        g = parse_program("out(x);")
        run = execute(g)
        assert run.trace[0] == "s" and run.trace[-1] == "e"


class TestBranches:
    COND = "if (x > 0) { out(1); } else { out(2); }"

    def test_conditional_branch_true(self):
        run = execute(parse_program(self.COND), env={"x": 5})
        assert run.outputs == [1]

    def test_conditional_branch_false(self):
        run = execute(parse_program(self.COND), env={"x": -5})
        assert run.outputs == [2]

    def test_nondeterministic_branch_uses_decisions(self):
        g = parse_program("if ? { out(1); } else { out(2); }")
        assert execute(g, decisions=DecisionSequence([0])).outputs == [1]
        assert execute(g, decisions=DecisionSequence([1])).outputs == [2]

    def test_decisions_reduced_modulo_fanout(self):
        g = parse_program("if ? { out(1); } else { out(2); }")
        assert execute(g, decisions=DecisionSequence([7])).outputs == [2]

    def test_missing_decisions_raise(self):
        g = parse_program("if ? { out(1); } else { out(2); }")
        with pytest.raises(InterpreterError):
            execute(g)

    def test_exhausted_decisions_raise(self):
        g = parse_program("if ? { out(1); } if ? { out(2); }")
        with pytest.raises(InterpreterError):
            execute(g, decisions=DecisionSequence([0]))

    def test_force_oracle_overrides_condition(self):
        g = parse_program(self.COND)
        run = execute(g, env={"x": 5}, decisions=DecisionSequence([1]), force_oracle=True)
        assert run.outputs == [2]


class TestLoops:
    def test_while_loop_executes(self):
        g = parse_program("i := 3; while (i > 0) { i := i - 1; } out(i);")
        run = execute(g)
        assert run.outputs == [0]
        assert run.executed["i := i - 1"] == 3

    def test_step_limit_enforced(self):
        g = parse_program("while (1 > 0) { x := x + 1; }")
        with pytest.raises(InterpreterError):
            execute(g, max_steps=50)


class TestErrors:
    def test_division_by_zero_recorded(self):
        run = execute(parse_program("out(1); x := 1 / z; out(2);"))
        assert run.outputs == [1]
        assert run.error is not None and "zero" in run.error

    def test_observable_combines_outputs_and_error(self):
        run = execute(parse_program("out(1); x := 1 / z;"))
        outputs, error = run.observable()
        assert outputs == (1,) and error is not None


class TestDecisionSequence:
    def test_reset_allows_replay(self):
        d = DecisionSequence([1, 0])
        g = parse_program("if ? { out(1); } else { out(2); }")
        first = execute(g, decisions=d)
        second = execute(g, decisions=d.reset())
        assert first.outputs == second.outputs
