"""Integration tests: every paper figure reproduces exactly."""

import pytest

from repro.core import pde, pfe
from repro.core.optimality import is_better_or_equal
from repro.dataflow.patterns import PatternInfo, sinking_candidate_index
from repro.figures import ALL_FIGURES, FIG_13_PANEL
from repro.ir.parser import parse_statement
from repro.ir.validate import validate

from ..helpers import assert_never_slower, assert_semantics_preserved


@pytest.mark.parametrize("figure", ALL_FIGURES, ids=[f.number for f in ALL_FIGURES])
class TestEveryFigure:
    def test_pde_matches_frozen_expectation(self, figure):
        result = pde(figure.before())
        assert result.graph == figure.expected_pde(), figure.claim

    def test_pfe_matches_when_specified(self, figure):
        if figure.expected_pfe_text is None:
            pytest.skip("figure does not distinguish pfe")
        result = pfe(figure.before())
        assert result.graph == figure.expected_pfe(), figure.claim

    def test_semantics_preserved(self, figure):
        result = pde(figure.before())
        assert assert_semantics_preserved(result.original, result.graph) > 0

    def test_never_slower(self, figure):
        result = pde(figure.before())
        assert_never_slower(result.original, result.graph)

    def test_result_better_or_equal_pathwise(self, figure):
        result = pde(figure.before())
        assert is_better_or_equal(result.graph, result.original)

    def test_result_well_formed(self, figure):
        result = pde(figure.before())
        validate(result.graph, require_split=True)

    def test_before_program_well_formed(self, figure):
        validate(figure.before(), strict=True)


class TestFigure13Panel:
    @pytest.mark.parametrize(
        "panel", FIG_13_PANEL, ids=[p.label for p in FIG_13_PANEL]
    )
    def test_candidate_identification(self, panel):
        info = PatternInfo.of(parse_statement("y := a + b"))
        index = sinking_candidate_index(panel.statements(), info)
        assert index == panel.expected_index, panel.label


class TestFigureSpecificClaims:
    def _figure(self, number):
        return next(f for f in ALL_FIGURES if f.number == number)

    def test_fig5_6_no_motion_into_the_second_loop(self):
        result = pde(self._figure("5-6").before())
        # The assignment sits in S4_5 and never inside loop {5, 7}.
        texts7 = [str(s) for s in result.graph.statements("7")]
        assert texts7 == ["y := y + x"]
        assert [str(s) for s in result.graph.statements("S4_5")] == ["x := a + b"]

    def test_fig7_single_insertion_for_two_removals(self):
        result = pde(self._figure("7").before())
        all_assignments = [
            s.pattern()
            for _n, _i, s in result.graph.assignments()
        ]
        assert all_assignments.count("a := a + 1") == 1

    def test_fig9_pde_keeps_but_pfe_removes(self):
        figure = self._figure("9")
        d = pde(figure.before())
        f = pfe(figure.before())
        d_assignments = list(d.graph.assignments())
        f_assignments = list(f.graph.assignments())
        assert len(d_assignments) == 1 and len(f_assignments) == 0

    def test_fig12_pfe_first_round_removes_both(self):
        figure = self._figure("12")
        f = pfe(figure.before())
        first_round = f.stats.history[0].elimination
        assert len(first_round) == 2
