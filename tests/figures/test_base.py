"""Unit tests for the figures-corpus machinery."""

from repro.figures import ALL_FIGURES
from repro.figures.base import PaperFigure
from repro.ir.validate import validate


class TestPaperFigure:
    def test_before_parses_fresh_graphs(self):
        figure = ALL_FIGURES[0]
        a = figure.before()
        b = figure.before()
        assert a == b and a is not b

    def test_expected_pde_optional(self):
        figure = PaperFigure(
            number="x",
            title="t",
            claim="c",
            before_text="out(q);",
        )
        assert figure.expected_pde() is None
        assert figure.expected_pfe() is None

    def test_all_figures_have_unique_numbers(self):
        numbers = [figure.number for figure in ALL_FIGURES]
        assert len(numbers) == len(set(numbers))

    def test_all_figures_carry_claims(self):
        assert all(figure.claim for figure in ALL_FIGURES)
        assert all(figure.title for figure in ALL_FIGURES)

    def test_all_expected_programs_well_formed(self):
        for figure in ALL_FIGURES:
            expected = figure.expected_pde()
            assert expected is not None
            validate(expected)
            if figure.expected_pfe_text:
                validate(figure.expected_pfe())
