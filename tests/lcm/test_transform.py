"""Unit tests for the lazy code motion transformation."""

import pytest

from repro.baselines import naive_sinking
from repro.interp.paths import enumerate_paths
from repro.ir.parser import parse_program
from repro.lcm import expression_computation_count, lazy_code_motion
from repro.workloads import random_structured_program

from ..helpers import assert_semantics_preserved

DIAMOND = """
graph
block s -> 0
block 0 -> 1, 2
block 1 { x := a + b } -> 4
block 2 {} -> 4
block 4 { y := a + b; out(y); out(x) } -> e
block e
"""

LOOP_INVARIANT = """
graph
block s -> 1
block 1 {} -> 2
block 2 { x := a + b; out(x) } -> 3
block 3 {} -> 2, 4
block 4 { out(x) } -> e
block e
"""


def count_on_paths(graph, key, repeats=2):
    """Max static computations of ``key`` along any bounded path."""
    best = 0
    for path in enumerate_paths(graph, repeats):
        count = 0
        for node in path:
            for stmt in graph.statements(node):
                if (
                    stmt.__class__.__name__ == "Assign"
                    and str(stmt.rhs) == key
                ):
                    count += 1
        best = max(best, count)
    return best


class TestDiamond:
    def test_redundant_recomputation_removed(self):
        res = lazy_code_motion(parse_program(DIAMOND))
        # On the path through node 1, a+b is computed once, not twice.
        assert count_on_paths(res.graph, "a + b") == 1
        assert count_on_paths(res.original, "a + b") == 2

    def test_semantics_preserved(self):
        res = lazy_code_motion(parse_program(DIAMOND))
        assert_semantics_preserved(res.original, res.graph)

    def test_temp_recorded(self):
        res = lazy_code_motion(parse_program(DIAMOND))
        assert "a + b" in res.temporaries


class TestLoopInvariant:
    def test_invariant_hoisted_out_of_loop(self):
        res = lazy_code_motion(parse_program(LOOP_INVARIANT))
        # a+b is computed at most once per execution now.
        assert count_on_paths(res.graph, "a + b", repeats=3) == 1

    def test_semantics_preserved(self):
        res = lazy_code_motion(parse_program(LOOP_INVARIANT))
        assert_semantics_preserved(res.original, res.graph)


class TestSafety:
    def test_no_unsafe_hoisting_out_of_conditional(self):
        # a+b is computed only on one branch: LCM must not move it above
        # the fork (not down-safe there).
        src = """
        graph
        block s -> 0
        block 0 -> 1, 2
        block 1 { x := a + b; out(x) } -> 3
        block 2 { out(q) } -> 3
        block 3 {} -> e
        block e
        """
        res = lazy_code_motion(parse_program(src))
        for node in ("s", "0"):
            for stmt in res.graph.statements(node):
                assert str(getattr(stmt, "rhs", "")) != "a + b"

    def test_cannot_repair_naive_sinking_into_loop(self):
        # The paper's Briggs/Cooper discussion (Figure 6): once x := a+b
        # sits inside the loop, LCM cannot hoist it back out — hoisting
        # above the loop entry would be unsafe because the zero-iteration
        # path never needs it.
        fig6_tail = parse_program(
            """
            graph
            block s -> 1
            block 1 { x := a + b } -> 5
            block 5 {} -> 7, 10
            block 7 { y := y + x } -> 5
            block 10 { out(y) } -> e
            block e
            """
        )
        sunk = naive_sinking(fig6_tail)
        assert count_on_paths(sunk.graph, "a + b", repeats=3) == 3  # impaired
        repaired = lazy_code_motion(sunk.graph)
        # Still computed once per iteration — LCM cannot save us.
        assert count_on_paths(repaired.graph, "a + b", repeats=3) == 3


class TestRandomised:
    @pytest.mark.parametrize("seed", range(10))
    def test_semantics_preserved_on_random_programs(self, seed):
        g = random_structured_program(seed, size=15)
        res = lazy_code_motion(g)
        assert_semantics_preserved(res.original, res.graph)

    @pytest.mark.parametrize("seed", range(10))
    def test_path_computation_counts_never_increase(self, seed):
        g = random_structured_program(seed, size=12, max_depth=1)
        res = lazy_code_motion(g)
        for key in res.analyses.expressions.keys():
            assert count_on_paths(res.graph, key) <= count_on_paths(
                res.original, key
            ), key


class TestIsolatedTreatment:
    def test_untouched_expressions_keep_their_form(self):
        # No redundancy anywhere: LCM must not introduce temporaries.
        res = lazy_code_motion(
            parse_program(
                "graph\nblock s -> 1\nblock 1 { x := a + b; out(x) } -> e\nblock e"
            )
        )
        texts = [str(s) for s in res.graph.statements("1")]
        assert texts == ["x := a + b", "out(x)"]
        assert not res.insertions and not res.rewrites

    def test_only_active_expressions_get_temps(self):
        res = lazy_code_motion(parse_program(DIAMOND))
        # a+b participates; nothing else exists — exactly one temp.
        assert set(res.temporaries) == {"a + b"}


class TestHelpers:
    def test_expression_computation_count(self):
        g = parse_program(
            "graph\nblock s -> 1\nblock 1 { x := a + b; y := a + b } -> e\nblock e"
        )
        assert expression_computation_count(g, "a + b") == 2
