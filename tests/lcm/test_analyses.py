"""Unit tests for the LCM analyses."""

from repro.ir.parser import parse_program
from repro.ir.splitting import split_critical_edges
from repro.lcm.analyses import ExpressionUniverse, analyze_lcm

DIAMOND = """
graph
block s -> 0
block 0 -> 1, 2
block 1 { x := a + b } -> 4
block 2 {} -> 4
block 4 { y := a + b; out(y); out(x) } -> e
block e
"""


def analyses_for(src):
    return analyze_lcm(split_critical_edges(parse_program(src)))


class TestExpressionUniverse:
    def test_collects_nontrivial_rhs(self):
        g = parse_program(
            "graph\nblock s -> 1\nblock 1 { x := a + b; y := 5; z := x } -> e\nblock e"
        )
        u = ExpressionUniverse(g)
        assert u.keys() == ("a + b",)

    def test_deduplicated(self):
        g = parse_program(
            "graph\nblock s -> 1\nblock 1 { x := a + b; y := a + b } -> e\nblock e"
        )
        assert len(ExpressionUniverse(g)) == 1


class TestAnticipability:
    def test_down_safe_where_all_paths_compute(self):
        a = analyses_for(DIAMOND)
        bit = a.expressions.universe.bit("a + b")
        assert a.ant_in["4"] & bit
        assert a.ant_in["1"] & bit

    def test_not_down_safe_where_a_path_avoids_the_computation(self):
        a = analyses_for(
            """
            graph
            block s -> 0
            block 0 -> 1, 2
            block 1 { x := a + b; out(x) } -> 3
            block 2 {} -> 3
            block 3 {} -> e
            block e
            """
        )
        bit = a.expressions.universe.bit("a + b")
        assert not a.ant_out["0"] & bit

    def test_operand_modification_kills_anticipation(self):
        a = analyses_for(
            """
            graph
            block s -> 1
            block 1 { a := 1 } -> 2
            block 2 { x := a + b; out(x) } -> e
            block e
            """
        )
        bit = a.expressions.universe.bit("a + b")
        assert not a.ant_in["1"] & bit
        assert a.ant_out["1"] & bit


class TestAvailability:
    def test_available_after_computation(self):
        a = analyses_for(DIAMOND)
        bit = a.expressions.universe.bit("a + b")
        assert a.av_out["1"] & bit
        assert not a.av_out["2"] & bit
        assert not a.av_in["4"] & bit  # one predecessor lacks it


class TestInsertDelete:
    def test_partial_redundancy_resolved_on_the_empty_branch(self):
        a = analyses_for(DIAMOND)
        bit = a.expressions.universe.bit("a + b")
        inserts = [edge for edge in a.graph.edges() if a.insert(edge) & bit]
        assert inserts == [("2", "4")]
        assert a.delete("4") & bit
        assert not a.delete("1") & bit

    def test_no_action_without_redundancy(self):
        a = analyses_for(
            "graph\nblock s -> 1\nblock 1 { x := a + b; out(x) } -> e\nblock e"
        )
        bit = a.expressions.universe.bit("a + b")
        assert all(not (a.insert(edge) & bit) for edge in a.graph.edges())
