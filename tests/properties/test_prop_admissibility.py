"""Property: every sinking pass the algorithm performs is admissible in
the exact sense of Definition 3.2 (checked by path analysis, not by the
analysis that produced it)."""

from hypothesis import HealthCheck, given, settings

from repro.core.admissibility import check_sinking_admissible
from repro.core.eliminate import dead_code_elimination
from repro.core.sink import assignment_sinking
from repro.ir.splitting import split_critical_edges

from .strategies import arbitrary_graphs, composed_programs, structured_programs

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def run_alternation_checking_each_pass(graph, rounds: int = 6) -> None:
    work = split_critical_edges(graph)
    for _ in range(rounds):
        dead_report = dead_code_elimination(work)
        before = work.copy()
        sink_report = assignment_sinking(work)
        check_sinking_admissible(before, sink_report)
        if not dead_report.changed and not sink_report.changed:
            break


class TestEverySinkingPassAdmissible:
    @RELAXED
    @given(structured_programs())
    def test_structured(self, graph):
        run_alternation_checking_each_pass(graph)

    @RELAXED
    @given(arbitrary_graphs())
    def test_arbitrary(self, graph):
        run_alternation_checking_each_pass(graph)

    @RELAXED
    @given(composed_programs())
    def test_composed(self, graph):
        run_alternation_checking_each_pass(graph)
