"""Property: Theorem 3.7 confluence on finite instances.

Any fair schedule over the transformation family converges, and all
schedules converge to the same program modulo in-block reordering of
independent statements (the canonical representative)."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.chaotic import canonicalize, chaotic_iterate, random_fair_schedule
from repro.core.driver import pde, pfe
from repro.core.optimality import compare

from .strategies import structured_programs

RELAXED = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestConfluence:
    @RELAXED
    @given(structured_programs(max_size=14), st.integers(0, 1000))
    def test_random_schedules_match_the_driver_pde(self, graph, seed):
        family = ("dce", "ask")
        chaotic = chaotic_iterate(
            graph, family, random_fair_schedule(family, seed)
        )
        driver = pde(graph)
        assert canonicalize(chaotic.graph) == canonicalize(driver.graph)

    @RELAXED
    @given(structured_programs(max_size=12), st.integers(0, 1000))
    def test_random_schedules_match_the_driver_pfe(self, graph, seed):
        family = ("fce", "ask")
        chaotic = chaotic_iterate(
            graph, family, random_fair_schedule(family, seed)
        )
        driver = pfe(graph)
        assert canonicalize(chaotic.graph) == canonicalize(driver.graph)

    @RELAXED
    @given(structured_programs(max_size=12), st.integers(0, 1000))
    def test_canonicalization_is_pathwise_neutral(self, graph, seed):
        """Reordering within blocks never changes per-path pattern counts."""
        result = chaotic_iterate(
            graph, ("dce", "ask"), random_fair_schedule(("dce", "ask"), seed)
        )
        outcome = compare(
            result.graph, canonicalize(result.graph), max_edge_repeats=1
        )
        assert outcome.equivalent
