"""Stateful property testing: a random walk through the transformation
space, with the invariants checked after every step.

Hypothesis drives an arbitrary interleaving of all elementary
transformations (the elementary steps of the paper plus the auxiliary
passes) against a reference snapshot, asserting after each step that

* the program stays structurally valid,
* the branching structure is preserved by the paper's transformations
  (Definition 3.6's precondition),
* the observable semantics never changes (modulo the error asymmetry).

This subsumes many hand-written orderings: any bug that needs a weird
interleaving of passes to trigger has a chance to surface here.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.core.eliminate import dead_code_elimination, faint_code_elimination
from repro.core.sink import assignment_sinking
from repro.ir.splitting import split_critical_edges
from repro.ir.validate import validate
from repro.passes.copyprop import copy_propagation
from repro.passes.hoisting import assignment_hoisting
from repro.workloads import random_structured_program

from ..helpers import assert_semantics_preserved


class TransformationWalk(RuleBasedStateMachine):
    @initialize(seed=st.integers(0, 10_000), size=st.integers(2, 16))
    def setup(self, seed, size):
        self.reference = split_critical_edges(
            random_structured_program(seed, size=size)
        )
        self.work = self.reference.copy()

    @rule()
    def step_dce(self):
        dead_code_elimination(self.work)

    @rule()
    def step_fce(self):
        faint_code_elimination(self.work)

    @rule()
    def step_ask(self):
        assignment_sinking(self.work)

    @rule()
    def step_hoist(self):
        assignment_hoisting(self.work)

    @rule()
    def step_copyprop(self):
        copy_propagation(self.work)

    @rule()
    def step_value_numbering(self):
        from repro.passes.value_numbering import value_numbering

        self.work = value_numbering(self.work, split_edges=False).graph

    @invariant()
    def still_valid(self):
        if not hasattr(self, "work"):
            return
        validate(self.work, require_split=True)

    @invariant()
    def same_branching_structure(self):
        if not hasattr(self, "work"):
            return
        assert self.work.same_shape(self.reference)

    @invariant()
    def semantics_preserved(self):
        if not hasattr(self, "work"):
            return
        assert_semantics_preserved(self.reference, self.work, seeds=range(2))


TransformationWalk.TestCase.settings = settings(
    max_examples=15, stateful_step_count=8, deadline=None
)
TestTransformationWalk = TransformationWalk.TestCase
