"""Hypothesis strategies for programs.

Two sources of programs:

* :func:`structured_programs` / :func:`arbitrary_graphs` — seed-driven
  wrappers around the workload generators (fast, broad coverage; the
  seed shrinks, giving reproducible small counterexamples);
* :func:`composed_programs` — a genuinely compositional strategy that
  assembles structured source text from hypothesis primitives, so
  shrinking minimises the *program*, not just a seed.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.ir.parser import parse_program
from repro.workloads import random_arbitrary_graph, random_structured_program

VARIABLES = ("u", "v", "w", "x", "y")


def structured_programs(max_size: int = 24):
    return st.builds(
        random_structured_program,
        seed=st.integers(0, 2**32 - 1),
        size=st.integers(1, max_size),
        n_variables=st.integers(1, 5),
        max_depth=st.integers(0, 3),
    )


def arbitrary_graphs(max_blocks: int = 10):
    return st.builds(
        random_arbitrary_graph,
        seed=st.integers(0, 2**32 - 1),
        n_blocks=st.integers(1, max_blocks),
        n_variables=st.integers(1, 5),
        statements_per_block=st.integers(0, 4),
    )


@st.composite
def _expr_text(draw) -> str:
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return str(draw(st.integers(0, 9)))
    if kind == 1:
        return draw(st.sampled_from(VARIABLES))
    op = draw(st.sampled_from(("+", "-", "*")))
    left = draw(st.sampled_from(VARIABLES))
    right = draw(st.one_of(st.sampled_from(VARIABLES), st.integers(0, 9).map(str)))
    return f"{left} {op} {right}"


@st.composite
def _statement_text(draw, depth: int) -> str:
    roll = draw(st.integers(0, 9))
    if roll == 0:
        return f"out({draw(_expr_text())});"
    if roll == 1 and depth > 0:
        body = draw(_body_text(depth - 1))
        if draw(st.booleans()):
            other = draw(_body_text(depth - 1))
            return f"if ? {{ {body} }} else {{ {other} }}"
        return f"if ? {{ {body} }}"
    if roll == 2 and depth > 0:
        body = draw(_body_text(depth - 1))
        return f"while ? {{ {body} }}"
    lhs = draw(st.sampled_from(VARIABLES))
    return f"{lhs} := {draw(_expr_text())};"


@st.composite
def _body_text(draw, depth: int = 2) -> str:
    count = draw(st.integers(1, 4))
    return " ".join(draw(_statement_text(depth)) for _ in range(count))


@st.composite
def composed_programs(draw):
    source = draw(_body_text(depth=2))
    anchor = draw(st.sampled_from(VARIABLES))
    return parse_program(f"{source} out({anchor});")
