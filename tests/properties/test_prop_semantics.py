"""Property-based tests: every transformation preserves semantics.

The oracle replays identical branch-decision sequences against the
original and the transformed program; see ``tests.helpers``.
"""

from hypothesis import HealthCheck, given, settings

from repro.baselines import (
    dce_only,
    defuse_elimination,
    fce_only,
    naive_sinking,
    single_pass_pde,
)
from repro.core import pde, pfe
from repro.core.eliminate import dead_code_elimination, faint_code_elimination
from repro.core.sink import assignment_sinking
from repro.ir.splitting import split_critical_edges
from repro.lcm import lazy_code_motion

from ..helpers import assert_never_slower, assert_semantics_preserved
from .strategies import arbitrary_graphs, composed_programs, structured_programs

RELAXED = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestPde:
    @RELAXED
    @given(structured_programs())
    def test_structured(self, graph):
        result = pde(graph)
        assert_semantics_preserved(result.original, result.graph, seeds=range(5))

    @RELAXED
    @given(arbitrary_graphs())
    def test_arbitrary(self, graph):
        result = pde(graph)
        assert_semantics_preserved(result.original, result.graph, seeds=range(5))

    @RELAXED
    @given(composed_programs())
    def test_composed(self, graph):
        result = pde(graph)
        assert_semantics_preserved(result.original, result.graph, seeds=range(5))

    @RELAXED
    @given(structured_programs())
    def test_never_slower(self, graph):
        result = pde(graph)
        assert_never_slower(result.original, result.graph, seeds=range(5))


class TestPfe:
    @RELAXED
    @given(structured_programs())
    def test_structured(self, graph):
        result = pfe(graph)
        assert_semantics_preserved(result.original, result.graph, seeds=range(5))

    @RELAXED
    @given(arbitrary_graphs())
    def test_arbitrary(self, graph):
        result = pfe(graph)
        assert_semantics_preserved(result.original, result.graph, seeds=range(5))


class TestElementarySteps:
    """Each elementary transformation is semantics-preserving on its own."""

    @RELAXED
    @given(arbitrary_graphs())
    def test_single_sinking_pass(self, graph):
        split = split_critical_edges(graph)
        work = split.copy()
        assignment_sinking(work)
        assert_semantics_preserved(split, work, seeds=range(5))

    @RELAXED
    @given(arbitrary_graphs())
    def test_single_dce_pass(self, graph):
        work = graph.copy()
        dead_code_elimination(work)
        assert_semantics_preserved(graph, work, seeds=range(5))

    @RELAXED
    @given(arbitrary_graphs())
    def test_single_fce_pass(self, graph):
        work = graph.copy()
        faint_code_elimination(work)
        assert_semantics_preserved(graph, work, seeds=range(5))

    @RELAXED
    @given(structured_programs())
    def test_edge_splitting(self, graph):
        split = split_critical_edges(graph)
        assert_semantics_preserved(graph, split, seeds=range(5))


class TestBaselines:
    @RELAXED
    @given(structured_programs(max_size=16))
    def test_all_baselines(self, graph):
        for baseline in (dce_only, fce_only, single_pass_pde, naive_sinking, defuse_elimination):
            result = baseline(graph)
            assert_semantics_preserved(
                result.original, result.graph, seeds=range(3)
            )


class TestLcm:
    @RELAXED
    @given(structured_programs(max_size=16))
    def test_lazy_code_motion(self, graph):
        result = lazy_code_motion(graph)
        assert_semantics_preserved(result.original, result.graph, seeds=range(3))
