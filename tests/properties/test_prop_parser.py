"""Property-based tests for the textual surface syntax."""

from hypothesis import HealthCheck, given, settings

from repro.ir.parser import parse_program
from repro.ir.printer import format_graph
from repro.ir.splitting import split_critical_edges
from repro.ir.validate import validate

from .strategies import arbitrary_graphs, composed_programs, structured_programs

RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestRoundTrip:
    @RELAXED
    @given(structured_programs())
    def test_structured(self, graph):
        assert parse_program(format_graph(graph)) == graph

    @RELAXED
    @given(arbitrary_graphs())
    def test_arbitrary(self, graph):
        assert parse_program(format_graph(graph)) == graph

    @RELAXED
    @given(composed_programs())
    def test_composed(self, graph):
        assert parse_program(format_graph(graph)) == graph

    @RELAXED
    @given(structured_programs())
    def test_after_splitting(self, graph):
        split = split_critical_edges(graph)
        assert parse_program(format_graph(split)) == split


class TestGeneratedProgramsWellFormed:
    @RELAXED
    @given(composed_programs())
    def test_composed_programs_validate(self, graph):
        validate(graph, strict=True)

    @RELAXED
    @given(structured_programs())
    def test_split_removes_all_critical_edges(self, graph):
        validate(split_critical_edges(graph), strict=True, require_split=True)
