"""Property: compiled execution ≡ source interpretation, for any
program, decisions and environment — with and without the peephole."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.codegen import lower, peephole, run_bytecode
from repro.interp import DecisionSequence, InterpreterError, execute

from .strategies import arbitrary_graphs, composed_programs, structured_programs

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _agree(graph, seed: int) -> None:
    plain = lower(graph)
    tight = peephole(plain)
    rng = random.Random(seed)
    for _ in range(3):
        decisions = [rng.randint(0, 5) for _ in range(300)]
        env = {v: rng.randint(-3, 3) for v in graph.variables()}
        try:
            src = execute(
                graph, dict(env), DecisionSequence(list(decisions)), max_steps=2500
            )
        except InterpreterError:
            continue
        try:
            vm = run_bytecode(
                plain, dict(env), DecisionSequence(list(decisions)), max_steps=80_000
            )
            vm2 = run_bytecode(
                tight, dict(env), DecisionSequence(list(decisions)), max_steps=80_000
            )
        except InterpreterError:
            # The VM executes strictly more steps (one per instruction);
            # budget exhaustion on its side proves nothing either way.
            continue
        assert vm.outputs == src.outputs
        assert (vm.trap is None) == (src.error is None)
        assert vm2.outputs == vm.outputs and vm2.trap == vm.trap
        assert vm2.executed <= vm.executed


class TestCompiledSemantics:
    @RELAXED
    @given(structured_programs(max_size=18), st.integers(0, 10_000))
    def test_structured(self, graph, seed):
        _agree(graph, seed)

    @RELAXED
    @given(arbitrary_graphs(max_blocks=9), st.integers(0, 10_000))
    def test_arbitrary(self, graph, seed):
        _agree(graph, seed)

    @RELAXED
    @given(composed_programs(), st.integers(0, 10_000))
    def test_composed(self, graph, seed):
        _agree(graph, seed)
