"""Property-based tests for the optimality machinery (Definition 3.6,
Theorems 5.1/5.2) on finite instances."""

from hypothesis import HealthCheck, given, settings

from repro.baselines import dce_only, fce_only, single_pass_pde
from repro.core import pde, pfe
from repro.core.optimality import compare, is_better_or_equal

from .strategies import arbitrary_graphs, structured_programs

SMALL = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestBetterRelation:
    @SMALL
    @given(structured_programs(max_size=12))
    def test_reflexive(self, graph):
        result = pde(graph)
        assert compare(result.graph, result.graph, max_edge_repeats=1).equivalent

    @SMALL
    @given(structured_programs(max_size=12))
    def test_pde_improves_or_equals_original(self, graph):
        result = pde(graph)
        assert is_better_or_equal(result.graph, result.original, max_edge_repeats=1)

    @SMALL
    @given(arbitrary_graphs(max_blocks=7))
    def test_pde_improves_or_equals_original_arbitrary(self, graph):
        result = pde(graph)
        assert is_better_or_equal(result.graph, result.original, max_edge_repeats=1)

    @SMALL
    @given(structured_programs(max_size=12))
    def test_pfe_improves_or_equals_pde(self, graph):
        """𝒢_PDE ⊆ 𝒢_PFE: the pfe optimum dominates the pde optimum."""
        d = pde(graph)
        f = pfe(graph)
        assert is_better_or_equal(f.graph, d.graph, max_edge_repeats=1)


class TestDominatesBaselines:
    """Theorem 5.2 made finite: the pde result is at least as good as
    what every restricted strategy produces."""

    @SMALL
    @given(structured_programs(max_size=12))
    def test_dominates_dce_only(self, graph):
        strong = pde(graph)
        weak = dce_only(graph)
        assert is_better_or_equal(strong.graph, weak.graph, max_edge_repeats=1)

    @SMALL
    @given(structured_programs(max_size=12))
    def test_dominates_single_pass(self, graph):
        strong = pde(graph)
        weak = single_pass_pde(graph)
        assert is_better_or_equal(strong.graph, weak.graph, max_edge_repeats=1)

    @SMALL
    @given(structured_programs(max_size=12))
    def test_pfe_dominates_fce_only(self, graph):
        strong = pfe(graph)
        weak = fce_only(graph)
        assert is_better_or_equal(strong.graph, weak.graph, max_edge_repeats=1)


class TestIdempotence:
    """The results are fixed points of the algorithm (Section 5.4)."""

    @SMALL
    @given(structured_programs(max_size=12))
    def test_pde_idempotent(self, graph):
        once = pde(graph)
        twice = pde(once.graph)
        assert twice.graph == once.graph

    @SMALL
    @given(structured_programs(max_size=12))
    def test_pfe_idempotent(self, graph):
        once = pfe(graph)
        twice = pfe(once.graph)
        assert twice.graph == once.graph

    @SMALL
    @given(arbitrary_graphs(max_blocks=7))
    def test_pde_idempotent_arbitrary(self, graph):
        once = pde(graph)
        twice = pde(once.graph)
        assert twice.graph == once.graph
