"""Property-based tests for the dataflow analyses (Tables 1 and 2)."""

from hypothesis import HealthCheck, given, settings

from repro.dataflow.dead import analyze_dead
from repro.dataflow.delay import analyze_delayability
from repro.dataflow.faint import analyze_faint
from repro.dataflow.patterns import PatternUniverse, candidate_locations
from repro.ir.splitting import split_critical_edges
from repro.ir.stmts import Assign

from .strategies import arbitrary_graphs, structured_programs

RELAXED = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestDeadSubsetOfFaint:
    @RELAXED
    @given(arbitrary_graphs())
    def test_pointwise_inclusion(self, graph):
        dead = analyze_dead(graph)
        faint = analyze_faint(graph)
        for node in graph.nodes():
            assert dead.entry(node) & ~faint.entry(node) == 0
            assert dead.exit(node) & ~faint.exit(node) == 0


class TestFaintMethodsAgree:
    @RELAXED
    @given(arbitrary_graphs())
    def test_instruction_vs_block(self, graph):
        a = analyze_faint(graph, method="instruction")
        b = analyze_faint(graph, method="block")
        for node in graph.nodes():
            assert a.entry(node) == b.entry(node)
            assert a.exit(node) == b.exit(node)


class TestDeadConsistency:
    @RELAXED
    @given(arbitrary_graphs())
    def test_exit_is_meet_of_successor_entries(self, graph):
        dead = analyze_dead(graph)
        for node in graph.nodes():
            successors = graph.successors(node)
            if not successors:
                continue
            meet = dead.universe.full
            for successor in successors:
                meet &= dead.entry(successor)
            assert dead.exit(node) == meet

    @RELAXED
    @given(arbitrary_graphs())
    def test_used_variables_never_dead_at_their_statement(self, graph):
        dead = analyze_dead(graph)
        for node in graph.nodes():
            after = dead.after_each(node)
            value_before = dead.entry(node)
            for index, stmt in enumerate(graph.statements(node)):
                for var in stmt.used():
                    assert not dead.universe.test(value_before, var)
                value_before = after[index]


class TestDelayability:
    @RELAXED
    @given(structured_programs())
    def test_equations_hold_at_fixpoint(self, graph):
        split = split_critical_edges(graph)
        d = analyze_delayability(split)
        full = d.patterns.universe.full
        for node in split.nodes():
            loc_delayed, loc_blocked = d.locals[node]
            assert d.x_delayed[node] == loc_delayed | (
                d.n_delayed[node] & ~loc_blocked
            )
            if node == split.start:
                assert d.n_delayed[node] == 0
            else:
                meet = full
                for pred in split.predecessors(node):
                    meet &= d.x_delayed[pred]
                assert d.n_delayed[node] == meet

    @RELAXED
    @given(structured_programs())
    def test_no_exit_insertions_at_branching_nodes(self, graph):
        split = split_critical_edges(graph)
        analyze_delayability(split).check_invariants()

    @RELAXED
    @given(arbitrary_graphs())
    def test_candidates_unique_per_pattern_and_block(self, graph):
        patterns = PatternUniverse(graph)
        locations = candidate_locations(graph, patterns)
        seen = set()
        for node, index, pattern in locations:
            assert (node, pattern) not in seen
            seen.add((node, pattern))
            stmt = graph.statements(node)[index]
            assert isinstance(stmt, Assign) and stmt.pattern() == pattern
            # No later occurrence of the pattern in this block.
            for later in graph.statements(node)[index + 1 :]:
                assert not (
                    isinstance(later, Assign) and later.pattern() == pattern
                )
