"""Unit tests for the Section 7 heuristic strategies."""

import pytest

from repro.core import pde
from repro.core.optimality import is_better_or_equal
from repro.ir.parser import parse_program
from repro.passes.strategies import budgeted_pde, region_closure, regional_pde
from repro.workloads import loop_chain, random_structured_program

from ..helpers import assert_semantics_preserved


class TestBudgetedPde:
    def test_zero_budget_is_identity(self):
        g = loop_chain(3)
        result = budgeted_pde(g, 0)
        assert result.graph == result.original

    def test_quality_monotone_in_budget(self):
        # Static instruction counts are NOT monotone (sinking duplicates
        # instances across branches before dce cleans up — the paper's
        # code-growth factor w); the path-wise dynamic cost is.
        from repro.core.optimality import total_executable_statements

        # Two edge repeats: the loop-drain saving only shows on paths
        # iterating at least twice (single-iteration paths cost the same
        # whether the pair sits in the body or after the loop).
        g = loop_chain(3)
        costs = [
            sum(total_executable_statements(budgeted_pde(g, budget).graph, 2))
            for budget in (0, 1, 2, 4, 8)
        ]
        assert costs == sorted(costs, reverse=True)
        assert costs[-1] < costs[0]

    def test_large_budget_matches_full_pde(self):
        g = loop_chain(3)
        assert budgeted_pde(g, 50).graph == pde(g).graph

    @pytest.mark.parametrize("budget", [1, 2, 3])
    def test_every_prefix_semantically_correct(self, budget):
        g = loop_chain(2)
        result = budgeted_pde(g, budget)
        assert_semantics_preserved(result.original, result.graph, seeds=range(5))

    @pytest.mark.parametrize("seed", range(5))
    def test_partial_results_never_worse_pathwise(self, seed):
        g = random_structured_program(seed, size=12, max_depth=1)
        result = budgeted_pde(g, 1)
        assert is_better_or_equal(result.graph, result.original, max_edge_repeats=1)


class TestRegionalPde:
    def test_full_region_matches_pde(self):
        g = loop_chain(2)
        from repro.ir.splitting import split_critical_edges

        split = split_critical_edges(g)
        result = regional_pde(g, split.nodes())
        assert result.graph == pde(g).graph

    def test_empty_region_is_identity(self):
        g = loop_chain(2)
        result = regional_pde(g, ())
        assert result.graph == result.original

    def test_hot_loop_optimised_cold_code_untouched(self):
        # Two loops; only the first is declared hot.
        g = loop_chain(2)
        hot = region_closure(g, ["b1", "t1", "x1"])
        result = regional_pde(g, hot)
        # The hot loop's body drained...
        assert result.graph.statements("b1") == ()
        # ...the cold loop's body is untouched.
        assert len(result.graph.statements("b2")) == 2

    def test_region_closure_adds_synthetic_nodes(self):
        g = loop_chain(1)
        hot = region_closure(g, ["b1", "t1", "x1"])
        assert any(name.startswith("S") for name in hot)

    def test_unknown_region_block_rejected(self):
        with pytest.raises(ValueError):
            regional_pde(loop_chain(1), ["nope"])

    @pytest.mark.parametrize("seed", range(5))
    def test_semantics_preserved_with_random_regions(self, seed):
        import random

        g = random_structured_program(seed, size=14)
        from repro.ir.splitting import split_critical_edges

        split = split_critical_edges(g)
        rng = random.Random(seed)
        nodes = [n for n in split.nodes() if n not in (split.start, split.end)]
        region = frozenset(rng.sample(nodes, k=max(1, len(nodes) // 2)))
        result = regional_pde(g, region)
        assert_semantics_preserved(result.original, result.graph, seeds=range(4))

    def test_loop_regions_pick_the_loops(self):
        from repro.passes import loop_regions

        g = loop_chain(2)
        hot = loop_regions(g)
        assert {"b1", "t1", "b2", "t2"} <= hot

    def test_loop_regions_capture_the_loop_win(self):
        from repro.core.optimality import total_executable_statements
        from repro.ir.splitting import split_critical_edges
        from repro.passes import loop_regions

        g = loop_chain(2)
        hot = loop_regions(g)
        result = regional_pde(g, hot)
        nothing = sum(total_executable_statements(split_critical_edges(g), 2))
        regional = sum(total_executable_statements(result.graph, 2))
        assert regional < nothing

    @pytest.mark.parametrize("seed", range(5))
    def test_regional_between_identity_and_full(self, seed):
        g = random_structured_program(seed, size=12, max_depth=1)
        from repro.ir.splitting import split_critical_edges

        split = split_critical_edges(g)
        result = regional_pde(g, split.nodes())
        full = pde(g)
        assert is_better_or_equal(full.graph, result.graph, max_edge_repeats=1)
