"""Unit tests for dominator-based value numbering ([27] stand-in)."""

import pytest

from repro.ir.parser import parse_program
from repro.lcm import lazy_code_motion
from repro.passes.value_numbering import value_numbering
from repro.workloads import random_arbitrary_graph, random_structured_program

from ..helpers import assert_semantics_preserved, statements_of


def run(src):
    return value_numbering(parse_program(src))


class TestLocalNumbering:
    def test_recomputation_becomes_copy(self):
        result = run(
            "graph\nblock s -> 1\nblock 1 { x := a + b; y := a + b; out(x + y) } -> e\nblock e"
        )
        texts = statements_of(result.graph, "1")
        assert texts[0] == "x := a + b"
        assert texts[1] == "y := x"

    def test_commutativity_detected(self):
        result = run(
            "graph\nblock s -> 1\nblock 1 { x := a + b; y := b + a; out(x + y) } -> e\nblock e"
        )
        assert statements_of(result.graph, "1")[1] == "y := x"

    def test_non_commutative_not_merged(self):
        result = run(
            "graph\nblock s -> 1\nblock 1 { x := a - b; y := b - a; out(x + y) } -> e\nblock e"
        )
        assert statements_of(result.graph, "1")[1] == "y := b - a"

    def test_operand_redefinition_kills_value(self):
        result = run(
            "graph\nblock s -> 1\n"
            "block 1 { x := a + b; a := 0; y := a + b; out(x + y) } -> e\nblock e"
        )
        assert statements_of(result.graph, "1")[2] == "y := a + b"

    def test_holder_redefinition_kills_value(self):
        result = run(
            "graph\nblock s -> 1\n"
            "block 1 { x := a + b; x := 0; y := a + b; out(x + y) } -> e\nblock e"
        )
        assert statements_of(result.graph, "1")[2] == "y := a + b"

    def test_self_referential_definition_not_bound(self):
        # x := x + 1: the value 'x+1' no longer exists after the def.
        result = run(
            "graph\nblock s -> 1\n"
            "block 1 { x := x + 1; y := x + 1; out(x + y) } -> e\nblock e"
        )
        assert statements_of(result.graph, "1")[1] == "y := x + 1"


class TestDominatorScoping:
    def test_value_flows_down_the_dominator_tree(self):
        result = run(
            """
            graph
            block s -> 1
            block 1 { x := a + b } -> 2, 3
            block 2 { y := a + b; out(y) } -> 4
            block 3 { z := a + b; out(z) } -> 4
            block 4 { out(x) } -> e
            block e
            """
        )
        assert statements_of(result.graph, "2")[0] == "y := x"
        assert statements_of(result.graph, "3")[0] == "z := x"

    def test_sibling_values_do_not_leak(self):
        result = run(
            """
            graph
            block s -> 1
            block 1 {} -> 2, 3
            block 2 { x := a + b; out(x) } -> 4
            block 3 { y := a + b; out(y) } -> 4
            block 4 {} -> e
            block e
            """
        )
        # Neither branch dominates the other: both keep their computation.
        assert statements_of(result.graph, "2")[0] == "x := a + b"
        assert statements_of(result.graph, "3")[0] == "y := a + b"

    def test_sibling_redefinition_blocks_reuse_at_the_merge(self):
        # Regression: a non-dominating sibling redefines an operand on
        # one path into the merge — the merge must NOT reuse the value
        # (only SSA-based dominator scoping could; we scope to EBBs).
        result = run(
            """
            graph
            block s -> 1
            block 1 { x := a + b } -> 2, 3
            block 2 { a := 0 } -> 4
            block 3 { z := a + b; out(z) } -> 4
            block 4 { w := a + b; out(w); out(x) } -> e
            block e
            """
        )
        assert statements_of(result.graph, "4")[0] == "w := a + b"
        # But the dominated single-pred sibling may reuse it.
        assert statements_of(result.graph, "3")[0] == "z := x"

    def test_merge_redundancy_is_out_of_scope_but_lcm_gets_it(self):
        # The Section 6.4 comparison in action: VN (dominator-scoped)
        # misses the partial redundancy at the merge; LCM removes it.
        src = """
        graph
        block s -> 0
        block 0 -> 1, 2
        block 1 { x := a + b } -> 4
        block 2 {} -> 4
        block 4 { y := a + b; out(y); out(x) } -> e
        block e
        """
        vn = value_numbering(parse_program(src))
        assert statements_of(vn.graph, "4")[0] == "y := a + b"  # missed
        lcm = lazy_code_motion(parse_program(src))
        assert statements_of(lcm.graph, "4")[0].startswith("y := h")  # caught


class TestSemantics:
    @pytest.mark.parametrize("seed", range(8))
    def test_preserved_on_random_structured(self, seed):
        g = random_structured_program(seed, size=16)
        result = value_numbering(g)
        assert_semantics_preserved(result.original, result.graph, seeds=range(4))

    @pytest.mark.parametrize("seed", range(8))
    def test_preserved_on_random_arbitrary(self, seed):
        g = random_arbitrary_graph(seed, n_blocks=8)
        result = value_numbering(g)
        assert_semantics_preserved(result.original, result.graph, seeds=range(4))

    def test_report_contents(self):
        result = run(
            "graph\nblock s -> 1\nblock 1 { x := a + b; y := a + b; out(x + y) } -> e\nblock e"
        )
        assert result.changed and result.replaced == [("1", 1)]
