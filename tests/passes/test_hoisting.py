"""Unit tests for the assignment hoisting baseline (Dhamdhere [9])."""

import pytest

from repro.core import pde
from repro.ir.parser import parse_program, parse_statement
from repro.dataflow.patterns import PatternInfo
from repro.passes.hoisting import (
    assignment_hoisting,
    hoist_then_eliminate,
    hoisting_candidate_index,
)
from repro.ir.splitting import split_critical_edges
from repro.workloads import random_arbitrary_graph, random_structured_program

from ..helpers import all_statement_texts, assert_semantics_preserved, statements_of

FIG1 = """
graph
block s -> 1
block 1 { y := a + b } -> 2, 3
block 2 {} -> 4
block 3 { y := 4 } -> 4
block 4 { out(y) } -> e
block e
"""

Y_AB = PatternInfo.of(parse_statement("y := a + b"))


class TestHoistingCandidates:
    def test_first_unblocked_occurrence(self):
        from repro.ir.builder import block_statements

        stmts = tuple(block_statements("q := 1; y := a + b"))
        assert hoisting_candidate_index(stmts, Y_AB) == 1

    def test_preceding_operand_definition_blocks(self):
        from repro.ir.builder import block_statements

        stmts = tuple(block_statements("a := 1; y := a + b"))
        assert hoisting_candidate_index(stmts, Y_AB) is None

    def test_preceding_lhs_use_blocks(self):
        from repro.ir.builder import block_statements

        stmts = tuple(block_statements("out(y); y := a + b"))
        assert hoisting_candidate_index(stmts, Y_AB) is None


class TestHoistingMovesUp:
    def test_common_assignment_rises_above_the_fork(self):
        g = split_critical_edges(
            parse_program(
                """
                graph
                block s -> 1
                block 1 {} -> 2, 3
                block 2 { x := a + b; out(x) } -> 4
                block 3 { x := a + b; out(x + 1) } -> 4
                block 4 {} -> e
                block e
                """
            )
        )
        assignment_hoisting(g)
        texts = all_statement_texts(g)
        assert texts.count("x := a + b") == 1
        # It rose at least to block 1 (or to the exit of s).
        assert "x := a + b" in statements_of(g, "1") + statements_of(g, "s")

    def test_one_sided_assignment_stays_on_its_branch(self):
        g = split_critical_edges(parse_program(FIG1))
        assignment_hoisting(g)
        # Nothing above block 1 changes; the assignment sits at s's exit
        # or in block 1, still on every path — still partially dead.
        texts = all_statement_texts(g)
        assert texts.count("y := a + b") == 1


class TestTheParperPoint:
    """'…assignments are hoisted rather than sunk, which does not allow
    any elimination of partially dead code.'"""

    def test_no_elimination_on_figure1(self):
        res = hoist_then_eliminate(parse_program(FIG1))
        assert res.eliminated == 0
        assert "y := a + b" in all_statement_texts(res.graph)

    def test_pde_strictly_beats_hoisting_on_figure1(self):
        from repro.core.optimality import is_better_or_equal

        weak = hoist_then_eliminate(parse_program(FIG1))
        strong = pde(parse_program(FIG1))
        assert is_better_or_equal(strong.graph, weak.graph)
        assert not is_better_or_equal(weak.graph, strong.graph)

    @pytest.mark.parametrize("seed", range(6))
    def test_hoisting_never_beats_pde(self, seed):
        from repro.core.optimality import is_better_or_equal

        g = random_structured_program(seed, size=12, max_depth=1)
        weak = hoist_then_eliminate(g)
        strong = pde(g)
        assert is_better_or_equal(strong.graph, weak.graph, max_edge_repeats=1)


class TestSemantics:
    @pytest.mark.parametrize("seed", range(8))
    def test_preserved_structured(self, seed):
        g = random_structured_program(seed, size=12)
        res = hoist_then_eliminate(g)
        assert_semantics_preserved(res.original, res.graph, seeds=range(4))

    @pytest.mark.parametrize("seed", range(8))
    def test_preserved_arbitrary(self, seed):
        g = random_arbitrary_graph(seed, n_blocks=7)
        res = hoist_then_eliminate(g)
        assert_semantics_preserved(res.original, res.graph, seeds=range(4))

    def test_candidates_in_s_survive(self):
        g = split_critical_edges(
            parse_program("graph\nblock s -> 1\nblock 1 { x := 1; out(x) } -> e\nblock e")
        )
        assignment_hoisting(g)
        assignment_hoisting(g)  # second pass: the statement now sits at s
        assert all_statement_texts(g).count("x := 1") == 1
