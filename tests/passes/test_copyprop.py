"""Unit tests for copy propagation."""

import pytest

from repro.ir.parser import parse_program
from repro.passes.copyprop import copy_propagation
from repro.workloads import random_structured_program

from ..helpers import assert_semantics_preserved, statements_of


def propagate(src):
    g = parse_program(src)
    original = g.copy()
    report = copy_propagation(g)
    return original, g, report


class TestLocalPropagation:
    def test_straight_line_use_rewritten(self):
        _o, g, report = propagate(
            "graph\nblock s -> 1\nblock 1 { x := y; z := x + 1; out(z) } -> e\nblock e"
        )
        assert statements_of(g, "1")[1] == "z := y + 1"
        assert report.changed

    def test_redefined_source_blocks_propagation(self):
        _o, g, _r = propagate(
            "graph\nblock s -> 1\nblock 1 { x := y; y := 0; z := x + 1; out(z) } -> e\nblock e"
        )
        assert statements_of(g, "1")[2] == "z := x + 1"

    def test_redefined_target_blocks_propagation(self):
        _o, g, _r = propagate(
            "graph\nblock s -> 1\nblock 1 { x := y; x := 3; z := x + 1; out(z) } -> e\nblock e"
        )
        assert statements_of(g, "1")[2] == "z := x + 1"

    def test_out_and_branch_uses_rewritten(self):
        _o, g, _r = propagate(
            """
            graph
            block s -> 1
            block 1 { x := y; branch x > 0 } -> 2, 3
            block 2 { out(x) } -> e
            block 3 {} -> e
            block e
            """
        )
        assert statements_of(g, "1")[1] == "branch y > 0"
        assert statements_of(g, "2")[0] == "out(y)"


class TestGlobalPropagation:
    def test_copy_available_across_blocks(self):
        _o, g, _r = propagate(
            """
            graph
            block s -> 1
            block 1 { x := y } -> 2
            block 2 { out(x) } -> e
            block e
            """
        )
        assert statements_of(g, "2")[0] == "out(y)"

    def test_one_sided_copy_not_available_at_merge(self):
        _o, g, _r = propagate(
            """
            graph
            block s -> 1
            block 1 {} -> 2, 3
            block 2 { x := y } -> 4
            block 3 { x := 1 } -> 4
            block 4 { out(x) } -> e
            block e
            """
        )
        assert statements_of(g, "4")[0] == "out(x)"

    def test_copy_on_all_paths_is_available(self):
        _o, g, _r = propagate(
            """
            graph
            block s -> 1
            block 1 {} -> 2, 3
            block 2 { x := y } -> 4
            block 3 { x := y } -> 4
            block 4 { out(x) } -> e
            block e
            """
        )
        assert statements_of(g, "4")[0] == "out(y)"

    def test_loop_invalidation(self):
        # y is redefined around the loop: the copy is not available at
        # the loop head.
        _o, g, _r = propagate(
            """
            graph
            block s -> 1
            block 1 { x := y } -> 2
            block 2 { out(x); y := y + 1 } -> 2, 3
            block 3 {} -> e
            block e
            """
        )
        assert statements_of(g, "2")[0] == "out(x)"


class TestSemantics:
    @pytest.mark.parametrize("seed", range(8))
    def test_preserved_on_random_programs(self, seed):
        g = random_structured_program(seed, size=14)
        original = g.copy()
        # Iterate to a fixpoint (chains resolve one link per pass).
        for _ in range(10):
            if not copy_propagation(g).changed:
                break
        assert_semantics_preserved(original, g, seeds=range(4))

    def test_no_copies_no_change(self):
        _o, g, report = propagate(
            "graph\nblock s -> 1\nblock 1 { x := a + 1; out(x) } -> e\nblock e"
        )
        assert not report.changed
