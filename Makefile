# Development entry points.  The environment needs no network: install
# falls back to `setup.py develop` when pip cannot build a wheel.

PYTHON ?= python

.PHONY: install test bench fuzz figures experiments examples clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

fuzz:
	$(PYTHON) scripts/fuzz.py 100

figures:
	$(PYTHON) scripts/render_figures.py figures_out

experiments:
	$(PYTHON) scripts/collect_experiments.py

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; $(PYTHON) $$script > /dev/null || exit 1; \
	done; echo "all examples ran"

clean:
	rm -rf figures_out .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
