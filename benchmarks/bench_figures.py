"""Experiments F1–F13 — regenerate every figure of the paper.

Each benchmark runs the full ``pde`` (and ``pfe`` where the figure
distinguishes them) on the exact figure program and asserts the frozen
expected result — the machine-checked equivalent of the paper's
before/after drawings.  Figure 13 exercises the sinking-candidate
definition directly.
"""

from __future__ import annotations

import pytest

from repro.core import pde, pfe
from repro.core.optimality import is_better_or_equal
from repro.dataflow.patterns import PatternInfo, sinking_candidate_index
from repro.figures import ALL_FIGURES, FIG_13_PANEL
from repro.ir.parser import parse_statement

_BY_NUMBER = {figure.number: figure for figure in ALL_FIGURES}


@pytest.mark.parametrize("number", sorted(_BY_NUMBER))
def test_figure_pde(benchmark, number):
    figure = _BY_NUMBER[number]
    before = figure.before()
    result = benchmark(pde, before)
    assert result.graph == figure.expected_pde(), figure.claim
    assert is_better_or_equal(result.graph, result.original)


@pytest.mark.parametrize(
    "number", [f.number for f in ALL_FIGURES if f.expected_pfe_text]
)
def test_figure_pfe(benchmark, number):
    figure = _BY_NUMBER[number]
    result = benchmark(pfe, figure.before())
    assert result.graph == figure.expected_pfe(), figure.claim


def test_fig13_sinking_candidates(benchmark):
    info = PatternInfo.of(parse_statement("y := a + b"))

    def classify_panel():
        return [
            sinking_candidate_index(panel.statements(), info)
            for panel in FIG_13_PANEL
        ]

    indices = benchmark(classify_panel)
    assert indices == [panel.expected_index for panel in FIG_13_PANEL]
