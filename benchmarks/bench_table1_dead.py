"""Experiment T1-dead — paper Table 1, dead variable analysis.

The paper presents the dead variable system as an efficient backward
bit-vector analysis.  These benchmarks time the analysis across program
sizes and assert the qualitative claims:

* it is a *bit-vector* problem — cost grows roughly linearly in program
  size at fixed variable count (one worklist pass plus loop slack);
* it is strictly weaker than the faint analysis (checked in T1-faint).
"""

from __future__ import annotations

import pytest

from repro.dataflow.dead import analyze_dead

from .conftest import ANALYSIS_SIZES


@pytest.mark.parametrize("size", ANALYSIS_SIZES)
def test_dead_analysis_scaling(benchmark, sized_programs, size):
    graph = sized_programs[size]
    result = benchmark(analyze_dead, graph)
    # Sanity: at the end node everything non-global is dead.
    assert result.exit(graph.end) == result.universe.full

    # The worklist touches each block a bounded number of times: the
    # evaluation count stays within a small multiple of the block count
    # (bit-vector behaviour, not per-variable re-iteration).
    assert result.result.transfer_evaluations <= 12 * len(graph.nodes())


def test_dead_analysis_on_irreducible_graph(benchmark, arbitrary_program):
    result = benchmark(analyze_dead, arbitrary_program)
    assert result.exit(arbitrary_program.end) == result.universe.full


def test_round_robin_fast_path_on_reducible_graphs(benchmark, sized_programs):
    """Section 6.1.1: on well-structured graphs the classic round-robin
    bit-vector technique converges in d(G)+3 sweeps — almost linear —
    and computes the same fixpoint as the worklist."""
    from repro.dataflow.bitvec import Universe
    from repro.dataflow.dead import DeadVariableAnalysis
    from repro.dataflow.framework import solve
    from repro.dataflow.reducible import (
        is_reducible,
        loop_connectedness,
        solve_round_robin,
    )

    graph = sized_programs[max(ANALYSIS_SIZES)]
    assert is_reducible(graph)
    universe = Universe(sorted(graph.variables()))
    analysis = DeadVariableAnalysis(graph, universe)
    result, sweeps = solve_round_robin(analysis)
    assert sweeps <= loop_connectedness(graph) + 3
    assert result.entry == solve(analysis).entry

    def run():
        return solve_round_robin(DeadVariableAnalysis(graph, universe))

    benchmark(run)


def test_dead_analysis_work_grows_with_size(sized_programs, benchmark):
    evaluations = {}
    for size, graph in sized_programs.items():
        evaluations[size] = analyze_dead(graph).result.transfer_evaluations
    small, large = min(sized_programs), max(sized_programs)
    blocks_ratio = len(sized_programs[large].nodes()) / len(
        sized_programs[small].nodes()
    )
    work_ratio = evaluations[large] / evaluations[small]
    # Work grows about as fast as the block count — not quadratically.
    assert work_ratio < 4 * blocks_ratio
    benchmark(analyze_dead, sized_programs[small])
