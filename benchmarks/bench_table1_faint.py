"""Experiment T1-faint — paper Table 1, faint variable analysis.

The faint system "does not have a bit-vector form" and is solved by the
slotwise/instruction-level worklist of Section 5.2.  We time both our
solution strategies, assert they agree, and check the paper's
qualitative cost claim — faint analysis is proportional to instructions
× variables, i.e. more expensive than the dead analysis but polynomially
bounded.
"""

from __future__ import annotations

import pytest

from repro.dataflow.dead import analyze_dead
from repro.dataflow.faint import analyze_faint
from repro.ir.parser import parse_program

from .conftest import ANALYSIS_SIZES

FIG9 = """
graph
block s -> 1
block 1 {} -> 2
block 2 { x := x + 1 } -> 2, 3
block 3 { out(y) } -> e
block e
"""


@pytest.mark.parametrize("size", ANALYSIS_SIZES)
@pytest.mark.parametrize("method", ("slot", "instruction", "block"))
def test_faint_analysis_scaling(benchmark, sized_programs, size, method):
    graph = sized_programs[size]
    result = benchmark(analyze_faint, graph, method)
    assert result.exit(graph.end) == result.universe.full

    # Cost bound from Section 6.1.2: the number of worklist evaluations
    # is O(i · v) — each slot flips at most once (exact for the slotwise
    # engine; the vectorised engines do fewer, coarser evaluations).
    instructions = graph.instruction_count() + len(graph.nodes())
    variables = max(1, len(graph.variables()))
    assert result.transfer_evaluations <= 8 * instructions * variables


def test_faint_detects_figure9(benchmark):
    graph = parse_program(FIG9)
    faint = benchmark(analyze_faint, graph)
    dead = analyze_dead(graph)
    assert faint.is_faint_after("2", 0, "x")
    assert not dead.is_dead_after("2", 0, "x")


def test_faint_subsumes_dead(benchmark, sized_programs):
    graph = sized_programs[min(ANALYSIS_SIZES)]
    faint = benchmark(analyze_faint, graph)
    dead = analyze_dead(graph)
    for node in graph.nodes():
        assert dead.entry(node) & ~faint.entry(node) == 0
