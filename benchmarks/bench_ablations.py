"""Ablation experiments — design choices the paper calls out.

* **A-exhaust** — second-order effects matter: single-pass vs.
  budgeted-k vs. exhaustive PDE on programs engineered to need chains
  (the Section 4 examples scaled up).  Measures the convergence curve
  the Section 7 heuristics trade against.
* **A-region** — 'hot area' localisation: full-region = full quality;
  hot-loop-only keeps most of the win at a fraction of the blocks.
* **A-hoist-vs-sink** — the direction of assignment motion is the whole
  point: hoisting (Dhamdhere [9]) eliminates nothing on the figures
  corpus, sinking eliminates everywhere elimination is possible.
* **A-footnote1** — interleaving LCM and copy propagation leaves the
  loop assignment behind; PDE drains it.
* **A-faint-method** — the paper's instruction-level slotwise faint
  solver vs. the block-level solver: same fixpoint, different constant.
"""

from __future__ import annotations

import pytest

from repro.core import pde
from repro.core.eliminate import dead_code_elimination
from repro.core.optimality import total_executable_statements
from repro.dataflow.faint import analyze_faint
from repro.figures import ALL_FIGURES
from repro.ir.parser import parse_program
from repro.ir.splitting import split_critical_edges
from repro.lcm import lazy_code_motion
from repro.passes import (
    budgeted_pde,
    copy_propagation,
    hoist_then_eliminate,
    region_closure,
    regional_pde,
)
from repro.workloads import loop_chain, random_structured_program


class TestExhaustiveVsBudgeted:
    def test_convergence_curve(self, benchmark):
        graph = loop_chain(4)
        costs = {
            budget: sum(
                total_executable_statements(budgeted_pde(graph, budget).graph, 2)
            )
            for budget in (0, 1, 2, 4, 16)
        }
        # Monotone improvement, converged by the largest budget.
        values = [costs[b] for b in (0, 1, 2, 4, 16)]
        assert values == sorted(values, reverse=True)
        full = sum(total_executable_statements(pde(graph).graph, 2))
        assert costs[16] == full
        assert costs[1] > full  # one round is NOT enough: second-order effects
        benchmark(budgeted_pde, graph, 2)


class TestRegionalisation:
    def test_hot_loop_keeps_most_of_the_win(self, benchmark):
        graph = loop_chain(2)
        hot = region_closure(graph, ["b1", "t1", "x1"])
        nothing = sum(total_executable_statements(split_critical_edges(graph), 2))
        hot_only = sum(
            total_executable_statements(regional_pde(graph, hot).graph, 2)
        )
        everything = sum(total_executable_statements(pde(graph).graph, 2))
        assert everything <= hot_only < nothing
        benchmark(regional_pde, graph, hot)


class TestHoistVsSink:
    @pytest.mark.parametrize(
        "figure", ALL_FIGURES, ids=[f.number for f in ALL_FIGURES]
    )
    def test_sinking_dominates_hoisting_on_figures(self, benchmark, figure):
        from repro.core.optimality import is_better_or_equal

        hoisted = hoist_then_eliminate(figure.before())
        sunk = pde(figure.before())
        assert sunk.stats.eliminated + sunk.stats.sunk_removed > 0
        # The pde result is at least as good path-wise on every figure
        # (hoisting reaches at most what plain iterated dce reaches).
        assert is_better_or_equal(sunk.graph, hoisted.graph)
        benchmark(hoist_then_eliminate, figure.before())

    def test_hoisting_cannot_remove_partially_dead(self, benchmark):
        fig1 = next(f for f in ALL_FIGURES if f.number == "1-2")
        result = hoist_then_eliminate(fig1.before())
        assert result.eliminated == 0
        benchmark(hoist_then_eliminate, fig1.before())


FOOTNOTE1_SRC = """
graph
block s -> 0
block 0 -> 1, 9
block 1 {} -> 2
block 2 { x := a + b } -> 3
block 3 {} -> 2, 7
block 9 { x := 5 } -> 7
block 7 { out(x) } -> e
block e
"""


class TestFootnote1:
    def test_lcm_copyprop_vs_pde(self, benchmark):
        graph = parse_program(FOOTNOTE1_SRC)
        lcm_result = lazy_code_motion(graph)
        work = lcm_result.graph
        for _ in range(8):
            changed = copy_propagation(work).changed
            changed |= dead_code_elimination(work).changed
            again = lazy_code_motion(work, split_edges=False)
            if again.graph == work and not changed:
                break
            work = again.graph
        loop_assignments = [
            str(stmt)
            for node in ("2", "3", "S3_2")
            if work.has_block(node)
            for stmt in work.statements(node)
        ]
        assert any(text.startswith("x :=") for text in loop_assignments)

        drained = pde(graph)
        for node in ("2", "3", "S3_2"):
            if drained.graph.has_block(node):
                assert drained.graph.statements(node) == ()
        benchmark(pde, graph)


class TestValueNumberingVsMotion:
    """The Section 6.4 comparison: the redundancy-elimination scopes of
    value numbering [27], LCM and PDE are genuinely different."""

    MERGE_REDUNDANCY = """
    graph
    block s -> 0
    block 0 -> 1, 2
    block 1 { x := a + b } -> 4
    block 2 {} -> 4
    block 4 { y := a + b; out(y); out(x) } -> e
    block e
    """

    def test_vn_misses_merge_redundancy_lcm_catches_it(self, benchmark):
        from repro.passes.value_numbering import value_numbering
        from repro.ir.parser import parse_program as parse

        vn = value_numbering(parse(self.MERGE_REDUNDANCY))
        kept = [str(s) for s in vn.graph.statements("4")]
        assert kept[0] == "y := a + b"  # out of VN's (acyclic/EBB) scope
        lcm_result = lazy_code_motion(parse(self.MERGE_REDUNDANCY))
        rewritten = [str(s) for s in lcm_result.graph.statements("4")]
        assert rewritten[0].startswith("y := h")
        benchmark(value_numbering, parse(self.MERGE_REDUNDANCY))

    def test_vn_and_pde_compose(self, benchmark):
        """VN leaves copies; PDE sinks/eliminates the partially dead ones."""
        from repro.core.optimality import is_better_or_equal
        from repro.ir.parser import parse_program as parse
        from repro.passes.value_numbering import value_numbering

        src = """
        graph
        block s -> 1
        block 1 { x := a + b; y := a + b } -> 2, 3
        block 2 { out(x) } -> 4
        block 3 { out(y) } -> 4
        block 4 {} -> e
        block e
        """
        vn = value_numbering(parse(src))
        combined = pde(vn.graph)
        assert is_better_or_equal(combined.graph, vn.graph)
        benchmark(pde, vn.graph)


class TestFaintSolverAblation:
    @pytest.mark.parametrize("method", ("instruction", "block"))
    def test_methods_same_fixpoint_different_engines(self, benchmark, method):
        graph = split_critical_edges(
            random_structured_program(seed=7, size=400, n_variables=8)
        )
        result = benchmark(analyze_faint, graph, method)
        other = analyze_faint(
            graph, "block" if method == "instruction" else "instruction"
        )
        for node in graph.nodes():
            assert result.entry(node) == other.entry(node)
