"""Experiment T2-delay — paper Table 2, delayability analysis and
insertion points.

Times the forward bit-vector delayability analysis and asserts the
table's defining properties on reference programs: where the delayed
bits flow, where the insertion predicates fire, and the footnote-6
invariant (no exit insertions at branching nodes on split graphs).
"""

from __future__ import annotations

import pytest

from repro.dataflow.delay import analyze_delayability
from repro.ir.parser import parse_program
from repro.ir.splitting import split_critical_edges

from .conftest import ANALYSIS_SIZES

FIG1 = """
graph
block s -> 1
block 1 { y := a + b } -> 2, 3
block 2 {} -> 4
block 3 { y := 4 } -> 4
block 4 { out(y) } -> e
block e
"""


@pytest.mark.parametrize("size", ANALYSIS_SIZES)
def test_delayability_scaling(benchmark, sized_programs, size):
    graph = sized_programs[size]
    result = benchmark(analyze_delayability, graph)
    result.check_invariants()
    # Bit-vector behaviour: bounded worklist revisits per block.
    assert result.transfer_evaluations <= 12 * len(graph.nodes())


def test_delayability_reference_solution(benchmark):
    graph = split_critical_edges(parse_program(FIG1))
    result = benchmark(analyze_delayability, graph)
    bit = result.patterns.universe.bit("y := a + b")
    assert result.x_delayed["1"] & bit
    assert result.n_delayed["2"] & bit and result.n_delayed["3"] & bit
    assert not result.x_delayed["3"] & bit  # blocked by the redefinition
    assert result.x_insert("2") & bit
    assert result.n_insert("3") & bit


def test_delayability_work_scales_with_patterns(benchmark, sized_programs):
    graph = sized_programs[min(ANALYSIS_SIZES)]
    result = benchmark(analyze_delayability, graph)
    assert len(result.patterns) == len(graph.assignment_patterns())
