"""Experiment E-machine — the optimisation measured at machine level.

Lower original and optimised programs to bytecode and count *executed
machine instructions* under identical decision sequences.  This is the
measurement a compiler paper's evaluation would end with: the
source-statement counts of Definition 3.6 translate into real executed
instruction reductions after lowering, and never into regressions.
"""

from __future__ import annotations

import random
from typing import Tuple

import pytest

from repro.codegen import lower, run_bytecode
from repro.core import pde, pfe
from repro.figures import ALL_FIGURES
from repro.interp import DecisionSequence, InterpreterError
from repro.workloads import diamond_chain, loop_chain, peel_chain


def machine_cost(graph, trials: int = 60, seed: int = 23) -> Tuple[float, int]:
    """Mean executed instructions per completed run, and run count."""
    program = lower(graph)
    total = 0
    runs = 0
    for trial in range(trials):
        rng = random.Random(seed * 7919 + trial)
        decisions = [rng.randint(0, 7) for _ in range(300)]
        env = {v: rng.randint(-4, 4) for v in sorted(graph.variables())}
        try:
            run = run_bytecode(
                program, env, DecisionSequence(decisions), max_steps=20_000
            )
        except InterpreterError:
            continue
        if run.trap is not None:
            continue
        total += run.executed
        runs += 1
    return (total / runs if runs else 0.0), runs


class TestMachineLevelWins:
    @pytest.mark.parametrize(
        "figure", ALL_FIGURES, ids=[f.number for f in ALL_FIGURES]
    )
    def test_never_regresses_on_figures(self, benchmark, figure):
        result = pde(figure.before())
        before, runs_before = machine_cost(result.original)
        after, runs_after = machine_cost(result.graph)
        assert runs_before > 0 and runs_after > 0
        assert after <= before + 1e-9, (before, after)
        benchmark(lower, result.graph)

    @pytest.mark.parametrize(
        "family,parameter",
        [(diamond_chain, 6), (loop_chain, 4), (peel_chain, 6)],
        ids=["diamonds", "loops", "peel"],
    )
    def test_strict_machine_win_on_families(self, benchmark, family, parameter):
        graph = family(parameter)
        result = pde(graph)
        before, _ = machine_cost(result.original)
        after, _ = machine_cost(result.graph)
        assert after < before, (family.__name__, before, after)
        print(
            f"\n{family.__name__}({parameter}): executed machine instructions "
            f"{before:.1f} -> {after:.1f}  ({1 - after / before:.1%} saved)"
        )
        program = lower(result.graph)

        def run_once():
            return run_bytecode(program, None, DecisionSequence([0, 1] * 200))

        benchmark(run_once)

    def test_pfe_at_least_as_good_at_machine_level(self, benchmark):
        graph = loop_chain(3)
        d = machine_cost(pde(graph).graph)[0]
        f = machine_cost(pfe(graph).graph)[0]
        assert f <= d + 1e-9
        benchmark(lower, pfe(graph).graph)
