"""Experiment E-dyn — an aggregate dynamic evaluation.

The paper has no machine evaluation; this is the table a modern
artifact would report.  For the figure corpus and the deterministic
scaling families we estimate the **expected executed-assignment count**
under Monte-Carlo branch sampling (``repro.interp.profile``) for every
technique, and assert the strength ordering the paper implies:

    original ≥ dce-only ≥ fce-only ≥ … and pde/pfe best of all,
    with strict improvement wherever a figure contains partially dead
    code (all of them).

Run with ``-s`` to see the table.
"""

from __future__ import annotations

from typing import Dict, List

import pytest

from repro.baselines import dce_only, fce_only, single_pass_pde, ssa_dce
from repro.core import pde, pfe
from repro.figures import ALL_FIGURES
from repro.interp.profile import expected_cost
from repro.passes import hoist_then_eliminate
from repro.workloads import diamond_chain, loop_chain

TRIALS = 120
SEED = 17

TECHNIQUES = (
    ("dce-only", lambda g: dce_only(g).graph),
    ("ssa-dce", lambda g: ssa_dce(g).graph),
    ("fce-only", lambda g: fce_only(g).graph),
    ("hoist+dce", lambda g: hoist_then_eliminate(g).graph),
    ("single-pass", lambda g: single_pass_pde(g).graph),
    ("pde", lambda g: pde(g).graph),
    ("pfe", lambda g: pfe(g).graph),
)


def _row(graph) -> Dict[str, float]:
    from repro.ir.splitting import split_critical_edges

    baseline = split_critical_edges(graph)
    row = {"original": expected_cost(baseline, trials=TRIALS, seed=SEED)}
    for name, run in TECHNIQUES:
        row[name] = expected_cost(run(graph), trials=TRIALS, seed=SEED)
    return row


class TestExpectedDynamicCost:
    @pytest.mark.parametrize(
        "figure", ALL_FIGURES, ids=[f.number for f in ALL_FIGURES]
    )
    def test_pde_best_or_tied_on_every_figure(self, benchmark, figure):
        row = _row(figure.before())
        assert row["pde"] <= row["original"] + 1e-9
        assert row["pde"] <= row["dce-only"] + 1e-9
        assert row["pde"] <= row["single-pass"] + 1e-9
        assert row["pde"] <= row["hoist+dce"] + 1e-9
        assert row["pfe"] <= row["pde"] + 1e-9
        # Elimination-only techniques agree with each other in power
        # ordering: fce at least as strong as dce; ssa-dce == fce.
        assert row["fce-only"] <= row["dce-only"] + 1e-9
        benchmark(pde, figure.before())

    def test_strict_improvement_exists_on_the_corpus(self, benchmark):
        improved = 0
        for figure in ALL_FIGURES:
            row = _row(figure.before())
            if row["pde"] < row["original"] - 1e-9:
                improved += 1
        assert improved >= 7  # nearly every figure gains dynamically
        benchmark(pde, ALL_FIGURES[0].before())

    @pytest.mark.parametrize(
        "family,parameter", [(diamond_chain, 6), (loop_chain, 4)], ids=["diamonds", "loops"]
    )
    def test_families_table(self, benchmark, family, parameter):
        graph = family(parameter)
        row = _row(graph)
        print(f"\nexpected executed assignments ({family.__name__}({parameter})):")
        for name in ("original", *[n for n, _ in TECHNIQUES]):
            print(f"  {name:>12}: {row[name]:8.2f}")
        assert row["pde"] <= min(
            row["original"], row["dce-only"], row["single-pass"], row["hoist+dce"]
        ) + 1e-9
        assert row["pde"] < row["original"] - 1e-9
        benchmark(pde, graph)
