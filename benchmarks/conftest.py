"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one artifact of the paper — a table's
analysis, a figure's transformation, or a Section 6 complexity claim —
and *asserts* the qualitative result (who wins, what the transformed
program is, how cost scales) while timing the component.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.ir.splitting import split_critical_edges
from repro.workloads import (
    diamond_chain,
    loop_chain,
    random_arbitrary_graph,
    random_structured_program,
)

#: Program-size sweep used by the Table 1/2 analysis benchmarks.
ANALYSIS_SIZES = (50, 200, 800)


@pytest.fixture(scope="session")
def sized_programs():
    """Edge-split random programs of increasing size, keyed by size."""
    programs = {}
    for size in ANALYSIS_SIZES:
        programs[size] = split_critical_edges(
            random_structured_program(seed=7, size=size, n_variables=8)
        )
    return programs


@pytest.fixture(scope="session")
def arbitrary_program():
    """A mid-size arbitrary (irreducible) graph for the analysis benches."""
    return split_critical_edges(random_arbitrary_graph(seed=3, n_blocks=60))


@pytest.fixture(scope="session")
def diamond_suite():
    return {k: diamond_chain(k) for k in (4, 8, 16)}


@pytest.fixture(scope="session")
def loop_suite():
    return {k: loop_chain(k) for k in (2, 4, 8)}
