"""Experiments B-dyn, F6-naive, S6-defuse — baseline comparisons.

Regenerates the paper's comparative claims:

* **B-dyn** — the pde/pfe results dominate every baseline path-wise and
  dynamically (Definition 3.6 / "at least as fast"): the strength order
  is  dce-only ⊑ fce-only,  single-pass ⊑ pde ⊑ pfe.
* **F6-naive** — Briggs/Cooper-style sinking moves the Figure 6
  assignment into the loop, impairing looping executions, and a
  subsequent lazy code motion cannot repair it.
* **S6-defuse** — the def-use graph underlying the "standard method" of
  Section 5.2 grows super-linearly on adversarial inputs while the
  iterative analyses stay cheap.
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.baselines import (
    build_def_use_graph,
    dce_only,
    defuse_elimination,
    fce_only,
    naive_sinking,
    single_pass_pde,
)
from repro.core import pde, pfe
from repro.core.optimality import is_better_or_equal, total_executable_statements
from repro.figures import ALL_FIGURES
from repro.interp import DecisionSequence, execute
from repro.ir.builder import GraphBuilder
from repro.ir.parser import parse_program
from repro.lcm import lazy_code_motion
from repro.workloads import diamond_chain


class TestDynamicComparison:
    """B-dyn: who wins, per figure and per family."""

    @pytest.mark.parametrize(
        "figure", ALL_FIGURES, ids=[f.number for f in ALL_FIGURES]
    )
    def test_pde_dominates_every_baseline_on_figures(self, benchmark, figure):
        graph = figure.before()
        strong = pde(graph)
        for baseline in (dce_only, fce_only, single_pass_pde):
            weak = baseline(graph)
            assert is_better_or_equal(
                pfe(graph).graph if baseline is fce_only else strong.graph,
                weak.graph,
            ), baseline.__name__
        benchmark(pde, graph)

    def test_static_count_ranking_on_diamond_chain(self, benchmark):
        graph = diamond_chain(8)
        counts: Dict[str, int] = {
            "original": sum(total_executable_statements(pde(graph).original, 1)),
            "dce-only": sum(total_executable_statements(dce_only(graph).graph, 1)),
            "single-pass": sum(
                total_executable_statements(single_pass_pde(graph).graph, 1)
            ),
            "pde": sum(total_executable_statements(pde(graph).graph, 1)),
        }
        assert counts["pde"] <= counts["single-pass"] <= counts["original"]
        assert counts["pde"] <= counts["dce-only"] <= counts["original"]
        assert counts["pde"] < counts["original"]  # strict win somewhere
        benchmark(pde, graph)


class TestFigure6NaiveSinking:
    """F6-naive: sinking into loops impairs; LCM cannot repair."""

    SRC = """
    graph
    block s -> 1
    block 1 { x := a + b } -> 5
    block 5 {} -> 7, 10
    block 7 { y := y + x } -> 5
    block 10 { out(y) } -> e
    block e
    """

    def _loop_executions(self, graph, iterations):
        decisions = [0] * iterations + [1]
        run = execute(graph, decisions=DecisionSequence(decisions))
        return run.executed.get("x := a + b", 0) + sum(
            count
            for pattern, count in run.executed.items()
            if pattern.endswith(":= a + b") or ":= h" in pattern
        )

    def test_naive_sinking_impairs_and_lcm_cannot_repair(self, benchmark):
        graph = parse_program(self.SRC)
        naive = naive_sinking(graph)
        good = pde(graph)

        decisions = [0] * 9 + [1]
        naive_run = execute(naive.graph, decisions=DecisionSequence(list(decisions)))
        good_run = execute(good.graph, decisions=DecisionSequence(list(decisions)))
        assert naive_run.executed["x := a + b"] == 9  # once per iteration
        assert good_run.executed["x := a + b"] == 1  # pde keeps it outside

        repaired = lazy_code_motion(naive.graph)
        # a+b is still (re)computed inside the loop after LCM.
        in_loop = [
            str(stmt.rhs)
            for node in ("5", "7")
            for stmt in repaired.graph.statements(node)
            if hasattr(stmt, "rhs")
        ]
        assert "a + b" in in_loop
        benchmark(naive_sinking, graph)


class TestDefUseGraphSize:
    """S6-defuse: def-use graphs can be large; elimination power equals fce."""

    @staticmethod
    def _many_uses(defs: int, uses: int):
        """One variable defined on many branches, used many times —
        the def-use edge count grows as defs × uses."""
        builder = GraphBuilder()
        builder.block("fork")
        builder.edge("s", "fork")
        for k in range(defs):
            name = f"d{k}"
            builder.block(name, f"x := {k};")
            builder.edge("fork", name)
            builder.edge(name, "join")
        uses_src = " ".join("out(x);" for _ in range(uses))
        builder.block("join", uses_src)
        builder.edge("join", "e")
        return builder.build()

    def test_edge_count_grows_multiplicatively(self, benchmark):
        small = build_def_use_graph(self._many_uses(4, 4))
        large = build_def_use_graph(self._many_uses(8, 8))
        assert small.edge_count == 16
        assert large.edge_count == 64
        benchmark(build_def_use_graph, self._many_uses(8, 8))

    def test_power_matches_fce(self, benchmark):
        graph = diamond_chain(6)
        assert defuse_elimination(graph).graph == fce_only(graph).graph
        benchmark(defuse_elimination, graph)
