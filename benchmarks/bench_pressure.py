"""Experiment E-pressure — live-range effects of sinking.

The delayability analysis descends from lazy code motion's
lifetime-minimisation machinery ([22]); sinking assignments toward
their uses should *shorten* live ranges.  Measured: peak and average
simultaneous-live-variable counts before/after ``pde`` on the figure
corpus and the scaling families — pressure never increases, and drops
where computations were eager.
"""

from __future__ import annotations

import pytest

from repro.core import pde
from repro.dataflow.pressure import measure_pressure
from repro.figures import ALL_FIGURES
from repro.workloads import diamond_chain, loop_chain, random_structured_program


class TestRegisterPressure:
    @pytest.mark.parametrize(
        "figure", ALL_FIGURES, ids=[f.number for f in ALL_FIGURES]
    )
    def test_peak_never_increases_on_figures(self, benchmark, figure):
        result = pde(figure.before())
        before = measure_pressure(result.original)
        after = measure_pressure(result.graph)
        assert after.peak <= before.peak
        benchmark(measure_pressure, result.graph)

    @pytest.mark.parametrize(
        "family,parameter",
        [(diamond_chain, 8), (loop_chain, 4)],
        ids=["diamonds", "loops"],
    )
    def test_families(self, benchmark, family, parameter):
        result = pde(family(parameter))
        before = measure_pressure(result.original)
        after = measure_pressure(result.graph)
        assert after.peak <= before.peak
        assert after.average <= before.average + 1e-9
        benchmark(measure_pressure, result.graph)

    def test_random_program_sweep(self, benchmark):
        regressions = 0
        for seed in range(30):
            result = pde(random_structured_program(seed, size=16))
            before = measure_pressure(result.original)
            after = measure_pressure(result.graph)
            if after.peak > before.peak:
                regressions += 1
        assert regressions == 0
        benchmark(measure_pressure, pde(random_structured_program(0, size=16)).graph)
