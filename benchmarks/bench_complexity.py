"""Experiment S6 — the Section 6 complexity study.

Section 6 claims, for the overall transformations:

* worst case ``O(n⁴)`` for ``pde`` and ``O(n⁵)`` for ``pfe``,
* *expected* quadratic behaviour for ``pde`` and at most cubic for
  ``pfe`` on realistic programs (Section 6.4),
* code growth factor ``w`` expected ``O(1)`` (Section 6.2),
* iteration count ``r`` conjectured linear in the instruction count
  (Section 6.3).

These benchmarks measure all four on the deterministic scaling families
(``diamond_chain``, ``loop_chain``) and on random programs, fit log-log
slopes, and assert the measured exponents fall at or below the paper's
expected-case bounds (with slack — we assert the *shape*, not absolute
constants).
"""

from __future__ import annotations

import math
import time
from typing import Callable, Dict, List, Tuple

import pytest

from repro.core import pde, pfe
from repro.workloads import (
    diamond_chain,
    irreducible_mesh,
    loop_chain,
    random_structured_program,
)


def _fit_slope(points: List[Tuple[float, float]]) -> float:
    """Least-squares slope of log(y) against log(x)."""
    xs = [math.log(x) for x, _ in points]
    ys = [math.log(max(y, 1e-9)) for _, y in points]
    n = len(points)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var = sum((x - mean_x) ** 2 for x in xs)
    return cov / var


def _measure(optimizer: Callable, make, parameters) -> List[Tuple[int, float, object]]:
    rows = []
    for parameter in parameters:
        graph = make(parameter)
        start = time.perf_counter()
        result = optimizer(graph)
        elapsed = time.perf_counter() - start
        rows.append((graph.instruction_count(), elapsed, result))
    return rows


class TestRuntimeExponent:
    """Measured growth exponents vs. the paper's expectations."""

    def test_pde_on_diamond_chains_subquadratic_to_quadratic(self, benchmark):
        rows = _measure(pde, diamond_chain, (8, 16, 32, 64))
        slope = _fit_slope([(n, t) for n, t, _ in rows])
        # Expected-case claim: ~O(n²).  Accept anything at/below cubic to
        # keep the assertion robust on a noisy machine; the measured value
        # is recorded in EXPERIMENTS.md.
        assert slope < 3.0, f"pde slope {slope:.2f}"
        benchmark(pde, diamond_chain(16))

    def test_pde_on_loop_chains(self, benchmark):
        rows = _measure(pde, loop_chain, (4, 8, 16, 32))
        slope = _fit_slope([(n, t) for n, t, _ in rows])
        assert slope < 3.0, f"pde slope {slope:.2f}"
        benchmark(pde, loop_chain(8))

    def test_pfe_at_most_one_power_worse_than_pde(self, benchmark):
        sizes = (8, 16, 32)
        pde_rows = _measure(pde, diamond_chain, sizes)
        pfe_rows = _measure(pfe, diamond_chain, sizes)
        pde_slope = _fit_slope([(n, t) for n, t, _ in pde_rows])
        pfe_slope = _fit_slope([(n, t) for n, t, _ in pfe_rows])
        assert pfe_slope < pde_slope + 1.5, (pde_slope, pfe_slope)
        benchmark(pfe, diamond_chain(16))

    def test_random_programs_stay_polynomial(self, benchmark):
        def make(size):
            return random_structured_program(seed=11, size=size, n_variables=6)

        rows = _measure(pde, make, (40, 80, 160, 320))
        slope = _fit_slope([(n, t) for n, t, _ in rows])
        assert slope < 3.5, f"pde slope {slope:.2f}"
        benchmark(pde, make(80))

    def test_irreducible_meshes_stay_polynomial(self, benchmark):
        """Arbitrary control flow is where only the slotwise approach
        applies (Section 6.1.1); the measured exponent still stays at or
        below the expected-case quadratic."""
        rows = _measure(pde, irreducible_mesh, (4, 8, 16, 32))
        slope = _fit_slope([(n, t) for n, t, _ in rows])
        assert slope < 3.0, f"pde slope {slope:.2f}"
        for _n, _t, result in rows:
            # Every segment's assignment crossed its irreducible loop.
            assert result.stats.sunk_removed >= 1
        benchmark(pde, irreducible_mesh(8))


class TestCodeGrowthFactor:
    """Section 6.2: w is O(b) in the worst case, expected O(1)."""

    @pytest.mark.parametrize(
        "family,parameters",
        [(diamond_chain, (8, 16, 32, 64)), (loop_chain, (4, 8, 16, 32))],
        ids=["diamonds", "loops"],
    )
    def test_growth_factor_bounded_by_constant(self, benchmark, family, parameters):
        factors = []
        for parameter in parameters:
            result = pde(family(parameter))
            factors.append(result.stats.code_growth_factor)
        # w stays flat as programs grow — the expected O(1) behaviour.
        assert max(factors) < 3.0, factors
        assert factors[-1] <= factors[0] * 1.5 + 0.5
        benchmark(pde, family(parameters[0]))

    def test_growth_factor_on_random_programs(self, benchmark):
        factors: Dict[int, float] = {}
        for size in (40, 80, 160):
            result = pde(random_structured_program(seed=5, size=size))
            factors[size] = result.stats.code_growth_factor
        assert max(factors.values()) < 3.0, factors
        benchmark(pde, random_structured_program(seed=5, size=40))


class TestIterationCount:
    """Section 6.3: r is at most quadratic, conjectured linear."""

    def test_rounds_grow_sublinearly_on_diamonds(self, benchmark):
        rounds = {}
        for parameter in (8, 16, 32, 64):
            graph = diamond_chain(parameter)
            rounds[graph.instruction_count()] = pde(graph).stats.rounds
        sizes = sorted(rounds)
        # The conjecture is linear; diamonds actually stabilise in O(1)
        # rounds because all segments drain in parallel.
        assert rounds[sizes[-1]] <= rounds[sizes[0]] + 3, rounds
        benchmark(pde, diamond_chain(8))

    def test_rounds_bounded_by_instructions_on_loops(self, benchmark):
        for parameter in (4, 8, 16):
            graph = loop_chain(parameter)
            stats = pde(graph).stats
            assert stats.rounds <= graph.instruction_count() + 2, (
                parameter,
                stats.rounds,
            )
        benchmark(pde, loop_chain(4))

    def test_component_applications_match_round_count(self, benchmark):
        result = pde(diamond_chain(8))
        assert result.stats.component_applications == 2 * result.stats.rounds
        benchmark(pde, diamond_chain(8))

    def test_conjecture_is_tight_on_peel_chains(self, benchmark):
        """Section 6.3 conjectures r linear in the instruction count; the
        peel-chain family realises exactly that: each round unblocks one
        more link of a dependency chain (Figure 10 iterated), so
        r = depth + 2 — linear, and no better bound can hold."""
        from repro.workloads import peel_chain

        for depth in (2, 4, 8, 16):
            result = pde(peel_chain(depth))
            assert result.stats.rounds == depth + 2, (depth, result.stats.rounds)
            graph = result.graph
            # The whole chain ends up on the branch that uses it.
            assert len(graph.statements("user")) == depth + 1
            assert graph.statements("chain") == ()
        benchmark(pde, peel_chain(8))
