"""Experiment S4 — second-order effects in the wild.

Section 4 argues that the mutual enabling of sinking and elimination
(second-order effects) is what forces the *exhaustive* alternation.
This census measures how often that matters on random programs:

* how many global rounds programs actually need, and
* how much of the total elimination / sinking work happens **after**
  round 1 — work a single-pass algorithm (Feigen et al.-style) forfeits.

The paper's own examples (Figures 10–12) are engineered to need 2–4
rounds; the census shows multi-round behaviour is common in random
programs too, not an artifact of hand-crafted inputs.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core import pde
from repro.workloads import random_arbitrary_graph, random_structured_program

SAMPLE = 60


def _census(make) -> Dict[str, float]:
    rounds_histogram: Dict[int, int] = {}
    late_work = 0
    total_work = 0
    for seed in range(SAMPLE):
        result = pde(make(seed))
        # The final round is always a no-op confirmation sweep.
        effective_rounds = max(1, result.stats.rounds - 1)
        rounds_histogram[effective_rounds] = (
            rounds_histogram.get(effective_rounds, 0) + 1
        )
        for number, record in enumerate(result.stats.history, start=1):
            work = len(record.elimination.removed) + len(record.sinking.removed)
            total_work += work
            if number > 1:
                late_work += work
    multi = sum(count for rounds, count in rounds_histogram.items() if rounds > 1)
    return {
        "histogram": rounds_histogram,
        "multi_round_fraction": multi / SAMPLE,
        "late_work_fraction": late_work / max(1, total_work),
    }


class TestSecondOrderCensus:
    def test_structured_programs_often_need_multiple_rounds(self, benchmark):
        stats = _census(lambda s: random_structured_program(s, size=20))
        print(f"\nstructured: rounds histogram {stats['histogram']}, "
              f"multi-round {stats['multi_round_fraction']:.0%}, "
              f"work after round 1: {stats['late_work_fraction']:.0%}")
        # Second-order effects are the rule, not the exception.
        assert stats["multi_round_fraction"] >= 0.3
        assert stats["late_work_fraction"] > 0.05
        benchmark(pde, random_structured_program(0, size=20))

    def test_arbitrary_graphs_too(self, benchmark):
        stats = _census(lambda s: random_arbitrary_graph(s, n_blocks=10))
        print(f"\narbitrary: rounds histogram {stats['histogram']}, "
              f"multi-round {stats['multi_round_fraction']:.0%}, "
              f"work after round 1: {stats['late_work_fraction']:.0%}")
        assert stats["multi_round_fraction"] >= 0.3
        benchmark(pde, random_arbitrary_graph(0, n_blocks=10))
