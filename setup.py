"""Legacy setup shim.

The execution environment has no ``wheel`` package and no network, so
PEP 517 editable installs (which build a wheel for metadata) fail.  This
shim lets ``pip install -e . --no-build-isolation`` fall back to the
legacy ``setup.py develop`` path.  All real metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
