"""Quickstart: eliminate partially dead code from a small program.

Run with::

    python examples/quickstart.py

The program below computes ``y := a + b`` before a branch, but one
branch overwrites ``y`` — the assignment is *partially dead* (paper
Figure 1).  Ordinary dead code elimination cannot remove it; partial
dead code elimination sinks it onto the branch that needs it.
"""

from repro import parse_program, pde, format_side_by_side
from repro.baselines import dce_only

SOURCE = """
y := a + b;          # partially dead: overwritten on the else-branch
if ? {
    out(y);
} else {
    y := 4;
    out(y);
}
x := y * 2;          # totally dead: x is never used
out(a);
"""


def main() -> None:
    program = parse_program(SOURCE)

    weak = dce_only(program)
    print("=== classical dead code elimination (baseline) ===")
    print(f"removed {weak.eliminated} assignment(s) — "
          "the partially dead y := a + b is out of its reach\n")

    result = pde(program)
    print("=== partial dead code elimination (the paper's algorithm) ===")
    print(format_side_by_side(result.original, result.graph))
    stats = result.stats
    print(
        f"rounds: {stats.rounds}   eliminated: {stats.eliminated}   "
        f"sunk: {stats.sunk_removed} removals -> {stats.sunk_inserted} insertions"
    )
    print(
        f"instructions: {stats.original_instructions} -> {stats.final_instructions}   "
        f"code growth factor w = {stats.code_growth_factor:.2f}"
    )


if __name__ == "__main__":
    main()
