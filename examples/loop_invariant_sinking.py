"""Scenario: draining loop-invariant code that loop-invariant code
motion cannot touch (paper Figures 3 & 4).

The loop body computes a two-instruction chain whose first instruction
defines an operand of the second — classical hoisting is blocked, and
even hoisting with copy propagation leaves the assignment in the loop.
Exhaustive assignment *sinking* moves the whole chain past the loop
exit, emptying the body.  The interpreter quantifies the win.
"""

from repro import DecisionSequence, execute, format_side_by_side, parse_program, pde

SOURCE = """
graph
block s -> 1
block 1 {} -> 2
block 2 { y := a + b; c := y - d } -> 3    # invariant chain, used after the loop
block 3 {} -> 2, 4                          # nondeterministic loop
block 4 { out(c) } -> e
block e
"""


def executed_assignments(graph, iterations: int) -> int:
    """Run the loop ``iterations`` times and count executed assignments."""
    decisions = DecisionSequence([0] * iterations + [1])
    run = execute(graph, env={"a": 3, "b": 4, "d": 1}, decisions=decisions)
    assert run.outputs == [6], run.outputs  # (3+4)-1, semantics intact
    return run.total_assignments


def main() -> None:
    result = pde(parse_program(SOURCE))
    print(format_side_by_side(result.original, result.graph))

    print("executed assignments by loop iteration count:")
    print(f"{'iterations':>12} {'original':>10} {'after pde':>10}")
    for iterations in (1, 2, 5, 10, 100):
        before = executed_assignments(result.original, iterations)
        after = executed_assignments(result.graph, iterations)
        print(f"{iterations:>12} {before:>10} {after:>10}")
    print("\nThe loop body is empty after pde: cost no longer grows with "
          "the iteration count.")


if __name__ == "__main__":
    main()
