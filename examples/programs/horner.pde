# Horner evaluation of a degree-4 polynomial, with an error estimate
# that is only consumed when the "check" branch runs.  The estimate's
# whole dependency chain is partially dead — exhaustive PDE moves it
# onto the checking branch (second-order: each link unblocks the next).
acc := c4;
acc := acc * x + c3;
acc := acc * x + c2;
acc := acc * x + c1;
acc := acc * x + c0;
err1 := acc - probe;
err2 := err1 * err1;
bound := err2 + tol;
if ? {
    out(bound);        # checking run
    out(acc);
} else {
    out(acc);          # fast path: the whole err chain was wasted
}
