# Globals must survive: `device` is declared outside the flow graph
# (footnote 2), so its final store cannot be dropped even though no
# local out() reads it.  The scratch register is ordinary and dies.
globals device;
scratch := base + 1;
device := scratch * 2;
if ? {
    scratch := 0;
    device := device + scratch;
} else {
    skip;
}
out(base);
