# Streaming statistics over a nondeterministic input sequence.
# The running `sq` accumulator (sum of squares) is consumed only when
# the "detailed report" branch is taken — the classic partially dead
# accumulator an optimiser should charge only to that branch.
n := 0;
total := 0;
sq := 0;
while ? {
    x := x + 3;            # "next input"
    total := total + x;
    sq := sq + x * x;
    n := n + 1;
}
if ? {
    out(total);
    out(sq);               # detailed report
    out(n);
} else {
    out(total);            # summary only: sq was dead weight
}
