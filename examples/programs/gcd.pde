# Euclid's algorithm with debug bookkeeping.
# The `steps` counter and the `trace` snapshot are only consumed on the
# verbose path — partially dead on the quiet one.  The swap temporary
# `t` is live only inside the loop.
steps := 0;
while (b != 0) {
    t := b;
    b := a % b;
    a := t;
    steps := steps + 1;
}
trace := steps * 10 + a;
if ? {
    out(trace);        # verbose: report steps and result together
    out(steps);
} else {
    skip;              # quiet: trace and steps were wasted work
}
out(a);
