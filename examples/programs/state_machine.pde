# A protocol automaton with an irreducible hand-off between the two
# "established" states (they can enter each other directly or from the
# dispatcher) — the Figure 5 shape in the wild.  The session digest is
# computed eagerly at connect time but only consumed on the audit exit.
graph
block s -> connect
block connect { digest := seed * 31 + peer; retries := 0 } -> dispatch
block dispatch {} -> estA, estB
block estA { retries := retries + 1 } -> estB, closing
block estB { retries := retries + 2 } -> estA, closing
block closing {} -> audit, bye
block audit { out(digest); out(retries) } -> bye
block bye { out(retries) } -> e
block e
