"""Scenario: profile-guided 'hot area' optimisation (paper Section 7).

The paper's conclusions propose limiting the exhaustive algorithm by
"localizing the optimization process to 'hot areas'".  This example
closes the loop the paper sketches:

1. profile the program under random branch decisions
   (``repro.interp.profile``) to find the hottest blocks,
2. run :func:`repro.passes.strategies.regional_pde` on that region only,
3. compare expected dynamic cost against doing nothing and against the
   full exhaustive algorithm.

Most of the win comes from the hot loop at a fraction of the scope.
"""

from repro.core import pde
from repro.interp.profile import expected_cost, hottest_blocks
from repro.ir import parse_program
from repro.ir.splitting import split_critical_edges
from repro.passes import region_closure, regional_pde

# A hot loop with a drainable invariant pair, surrounded by cold code
# with its own (minor) partially dead assignment.
SOURCE = """
graph
block s -> c1
block c1 { t := p + 1 } -> c2, c3       # cold: t partially dead
block c2 { out(t) } -> h0
block c3 { t := 0; out(t) } -> h0
block h0 {} -> h1
block h1 { y := a + b; c := y - d } -> h2   # hot loop body
block h2 {} -> h1, c4
block c4 { out(c) } -> e
block e
"""


def main() -> None:
    program = parse_program(SOURCE)
    split = split_critical_edges(program)

    ranked = hottest_blocks(split, top=3, trials=150, seed=9)
    print("hottest blocks (mean visits/run):")
    for name, freq in ranked:
        print(f"  {name:>6}: {freq:5.2f}")

    # Sinking realises a region's win at its exits, so include the
    # frontier (see region_closure's docstring).
    hot = region_closure(split, [name for name, _f in ranked], include_frontier=True)
    print("\nregion chosen:", sorted(hot))

    regional = regional_pde(split, hot)
    full = pde(program)

    rows = [
        ("untouched", expected_cost(split, trials=200, seed=3)),
        ("hot region only", expected_cost(regional.graph, trials=200, seed=3)),
        ("full pde", expected_cost(full.graph, trials=200, seed=3)),
    ]
    print("\nexpected executed assignments per run:")
    for name, cost in rows:
        print(f"  {name:>16}: {cost:6.2f}")
    print("\nThe hot loop supplies most of the win; the cold partially dead "
          "assignment is the remainder full pde collects.")


if __name__ == "__main__":
    main()
