"""Scenario: the whole mini-compiler — parse, optimise, lower, execute.

The paper's transformation lives in the middle of a compiler; this
example runs the full pipeline on the Figure 3 loop and measures the
optimisation where it finally matters: executed machine instructions in
the bytecode VM.
"""

from repro import parse_program, pde
from repro.codegen import format_listing, lower, run_bytecode
from repro.interp import DecisionSequence

SOURCE = """
graph
block s -> 1
block 1 {} -> 2
block 2 { y := a + b; c := y - d } -> 3   # loop-invariant pair
block 3 {} -> 2, 4
block 4 { out(c) } -> e
block e
"""


def main() -> None:
    result = pde(parse_program(SOURCE))

    before = lower(result.original)
    after = lower(result.graph)
    print("=== optimised bytecode ===")
    print(format_listing(after))

    print("\nexecuted machine instructions by loop iteration count:")
    print(f"{'iterations':>12} {'original':>9} {'optimised':>10} {'saved':>7}")
    env = {"a": 3, "b": 4, "d": 1}
    for iterations in (1, 5, 25, 100):
        decisions = [0] * iterations + [1]
        base = run_bytecode(before, dict(env), DecisionSequence(list(decisions)))
        new = run_bytecode(after, dict(env), DecisionSequence(list(decisions)))
        assert base.outputs == new.outputs == [6]
        saved = 1 - new.executed / base.executed
        print(
            f"{iterations:>12} {base.executed:>9} {new.executed:>10} {saved:>6.1%}"
        )
    print("\nThe invariant pair costs the original 5 instructions per "
          "iteration; the optimised loop body is branch-only.")


if __name__ == "__main__":
    main()
