"""Scenario: a small optimisation pipeline — PRE then PDE.

Partial dead code elimination is "essentially dual" to partial
redundancy elimination (paper Section 1): one sinks assignments with
the control flow, the other hoists computations against it.  A real
optimiser runs both.  This example processes a program that needs both:

* ``t := a * b`` is computed on two converging paths and again at the
  join — lazy code motion removes the recomputation;
* the LCM rewrite leaves copies and partially dead assignments behind —
  partial dead code elimination cleans them up.
"""

from repro import DecisionSequence, execute, format_graph, parse_program, pde
from repro.lcm import lazy_code_motion

SOURCE = """
graph
block s -> 0
block 0 -> 1, 2
block 1 { t := a * b; out(t) } -> 3
block 2 { t := a * b } -> 3
block 3 { u := a * b } -> 4, 5    # redundant on every path
block 4 { out(u) } -> 6
block 5 { u := 0; out(u) } -> 6   # u := a*b partially dead here
block 6 {} -> e
block e
"""


def dynamic_cost(graph, decisions) -> int:
    """Executed *expression evaluations* (copies like ``t := h0`` are
    register moves a later coalescing pass removes — not counted)."""
    run = execute(graph, env={"a": 6, "b": 7}, decisions=DecisionSequence(list(decisions)))
    return sum(
        count
        for pattern, count in run.executed.items()
        if any(op in pattern for op in "+-*/%")
    )


def main() -> None:
    program = parse_program(SOURCE)

    pre = lazy_code_motion(program)
    print("=== after lazy code motion (PRE) ===")
    print(format_graph(pre.graph))

    both = pde(pre.graph)
    print("=== after PRE + PDE ===")
    print(format_graph(both.graph))

    print("dynamic expression evaluations (per branch choice):")
    print(f"{'path':>12} {'original':>9} {'PRE':>6} {'PRE+PDE':>8}")
    for label, decisions in (("1 then 4", [0, 0]), ("2 then 5", [1, 1])):
        print(
            f"{label:>12} {dynamic_cost(pre.original, decisions):>9} "
            f"{dynamic_cost(pre.graph, decisions):>6} "
            f"{dynamic_cost(both.graph, decisions):>8}"
        )

    def copies(graph, decisions):
        run = execute(
            graph, env={"a": 6, "b": 7}, decisions=DecisionSequence(list(decisions))
        )
        return run.total_assignments - dynamic_cost(graph, decisions)

    print("\nexecuted copy statements (PRE's overhead, swept by PDE):")
    print(f"{'path':>12} {'PRE':>6} {'PRE+PDE':>8}")
    for label, decisions in (("1 then 4", [0, 0]), ("2 then 5", [1, 1])):
        print(
            f"{label:>12} {copies(pre.graph, decisions):>6} "
            f"{copies(both.graph, decisions):>8}"
        )
    print("\nPRE removes recomputations at the price of copies; PDE then "
          "sweeps the partially dead copies — the dual transformations compose.")


if __name__ == "__main__":
    main()
