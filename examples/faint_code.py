"""Scenario: dead vs. faint code (paper Figure 9 and Section 3).

``x := x + 1`` in a loop whose result never reaches an output is not
*dead* — it feeds its own next iteration — but it is *faint*.  The
example contrasts the four eliminators:

* classical dce keeps it,
* the def-use marking algorithm with optimistic assumptions removes it
  (and provably coincides with faint code elimination),
* ``pde`` moves it to the back edge (one update saved per execution),
* ``pfe`` removes it entirely.
"""

from repro import format_side_by_side, parse_program, pde, pfe
from repro.baselines import dce_only, defuse_elimination, fce_only

SOURCE = """
graph
block s -> 1
block 1 { x := 0 } -> 2
block 2 { x := x + 1; sum := sum + x } -> 2, 3   # sum is faint too!
block 3 { out(q) } -> e
block e
"""


def instruction_count(result) -> int:
    return result.graph.instruction_count()


def main() -> None:
    program = parse_program(SOURCE)
    rows = [
        ("original", parse_program(SOURCE).instruction_count()),
        ("dce-only", instruction_count(dce_only(program))),
        ("def-use marking", instruction_count(defuse_elimination(program))),
        ("fce-only", instruction_count(fce_only(program))),
        ("pde", pde(program).graph.instruction_count()),
        ("pfe", pfe(program).graph.instruction_count()),
    ]
    print(f"{'eliminator':>16} {'instructions':>13}")
    for name, count in rows:
        print(f"{name:>16} {count:>13}")

    assert defuse_elimination(program).graph == fce_only(program).graph
    print("\nOptimistic def-use marking and faint code elimination agree, "
          "as Section 5.2 observes.")

    print("\n=== pfe result ===")
    result = pfe(program)
    print(format_side_by_side(result.original, result.graph))


if __name__ == "__main__":
    main()
