"""Scenario: arbitrary control flow and the danger of naive sinking
(paper Figures 5 & 6 and the Briggs/Cooper discussion).

The program contains an *irreducible* loop (two entry points) followed
by a second loop.  PDE moves ``x := a + b`` across the irreducible loop
and stops at the synthetic node ``S4_5`` — moving further into the
second loop would impair looping executions.  A naive use-site sinker
(Briggs/Cooper style) does exactly that, and a subsequent partial
redundancy elimination (lazy code motion) cannot hoist it back out.
"""

from repro import DecisionSequence, execute, format_side_by_side, parse_program, pde
from repro.baselines import naive_sinking
from repro.lcm import lazy_code_motion

__doc__ += """
Note: the naive-sinking comparison runs on the S4_5-onward fragment,
matching the paper's sentence about Briggs/Cooper's algorithm.
"""

SOURCE = """
graph
block s -> 1
block 1 { x := a + b } -> 2
block 2 -> 3, 4          # two entries into the irreducible loop 3 <-> 4
block 3 -> 4, 6
block 4 -> 3, 5
block 6 { x := c } -> 9  # x redefined: x := a+b is dead along this path
block 5 -> 7, 10         # second loop: 5 <-> 7
block 7 { y := y + x } -> 5
block 9 { out(x) } -> e
block 10 { out(y) } -> e
block e
"""


def main() -> None:
    program = parse_program(SOURCE)

    result = pde(program)
    print("=== pde: across the irreducible loop, never into the second ===")
    print(format_side_by_side(result.original, result.graph))
    print("x := a + b lives in:", [
        node
        for node in result.graph.nodes()
        for stmt in result.graph.statements(node)
        if str(stmt) == "x := a + b"
    ])

    # The paper: "their algorithm would sink the instruction of node
    # S4,5 into the loop to node 7."  Reproduce on the S4_5-onward
    # fragment (the baseline's conservative guards need the single
    # definition of x the fragment has).
    fragment = parse_program(
        """
        graph
        block s -> 1
        block 1 { x := a + b } -> 5     # this is the paper's S4,5
        block 5 {} -> 7, 10
        block 7 { y := y + x } -> 5
        block 10 { out(y) } -> e
        block e
        """
    )
    naive = naive_sinking(fragment)
    good = pde(fragment)
    print("\n=== naive use-site sinking pulls it into the loop ===")
    print(f"{'iterations':>12} {'pde':>6} {'naive':>6}")
    for iterations in (1, 5, 20):
        pde_run = execute(
            good.graph, decisions=DecisionSequence([0] * iterations + [1])
        )
        naive_run = execute(
            naive.graph, decisions=DecisionSequence([0] * iterations + [1])
        )
        print(
            f"{iterations:>12} {pde_run.executed.get('x := a + b', 0):>6} "
            f"{naive_run.executed.get('x := a + b', 0):>6}"
        )

    repaired = lazy_code_motion(naive.graph)
    in_loop = [
        str(stmt)
        for node in ("5", "7")
        for stmt in repaired.graph.statements(node)
    ]
    print("\nafter a subsequent lazy code motion the loop still contains:")
    print(" ", in_loop, "— PRE cannot repair the unsafe move (no down-safety")
    print("  at the loop exit: the zero-iteration path never needs a+b).")


if __name__ == "__main__":
    main()
