"""Differential fuzzing harness.

Runs every transformation in the repository over seeded random programs
and checks the oracles:

* semantics preserved (interpreter replay, honouring the footnote 3
  error asymmetry),
* pde/pfe results never slower (executed-assignment counts),
* pde/pfe idempotent,
* every sinking pass admissible (Definition 3.2).

Usage::

    python scripts/fuzz.py [count] [start-seed]

Exit code 0 when every check passes; counterexample seeds are printed
otherwise.  The hypothesis suites cover the same ground per-commit; the
fuzzer exists for long unattended soak runs.
"""

from __future__ import annotations

import sys
import traceback

from repro.baselines import (
    dce_only,
    defuse_elimination,
    fce_only,
    naive_sinking,
    single_pass_pde,
    ssa_dce,
)
from repro.core import pde, pfe
from repro.core.admissibility import check_sinking_admissible
from repro.core.eliminate import dead_code_elimination
from repro.core.sink import assignment_sinking
from repro.ir.simplify import tidy
from repro.ir.splitting import split_critical_edges
from repro.lcm import lazy_code_motion
from repro.passes import hoist_then_eliminate
from repro.passes.value_numbering import value_numbering
from repro.workloads import random_arbitrary_graph, random_structured_program

sys.path.insert(0, "tests")
from helpers import assert_never_slower, assert_semantics_preserved  # noqa: E402

TRANSFORMATIONS = (
    ("pde", lambda g: pde(g)),
    ("pfe", lambda g: pfe(g)),
    ("dce-only", dce_only),
    ("fce-only", fce_only),
    ("defuse", defuse_elimination),
    ("ssa-dce", ssa_dce),
    ("single-pass", single_pass_pde),
    ("naive-sinking", naive_sinking),
    ("hoist+dce", hoist_then_eliminate),
    ("lcm", lazy_code_motion),
    ("value-numbering", value_numbering),
)


def check_one(seed: int) -> None:
    for label, make in (
        ("structured", lambda s: random_structured_program(s, size=18)),
        ("arbitrary", lambda s: random_arbitrary_graph(s, n_blocks=9)),
    ):
        graph = make(seed)
        for name, transform in TRANSFORMATIONS:
            result = transform(graph)
            assert_semantics_preserved(
                result.original, result.graph, seeds=range(4)
            ), f"{label}/{name}"
        strong = pde(graph)
        assert_never_slower(strong.original, strong.graph, seeds=range(4))
        assert pde(strong.graph).graph == strong.graph, "pde not idempotent"

        # Per-pass admissibility along the real alternation.
        work = split_critical_edges(graph)
        for _ in range(6):
            changed = dead_code_elimination(work).changed
            before = work.copy()
            report = assignment_sinking(work)
            check_sinking_admissible(before, report)
            if not changed and not report.changed:
                break

        # Tidying after the fact stays faithful.
        assert_semantics_preserved(strong.graph, tidy(strong.graph), seeds=range(3))


def main() -> int:
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 50
    start = int(sys.argv[2]) if len(sys.argv) > 2 else 0
    failures = 0
    for seed in range(start, start + count):
        try:
            check_one(seed)
        except Exception:  # noqa: BLE001 — report and continue fuzzing
            failures += 1
            print(f"FAIL seed={seed}")
            traceback.print_exc()
        if (seed - start + 1) % 10 == 0:
            print(f"... {seed - start + 1}/{count} seeds, {failures} failure(s)")
    print(f"done: {count} seeds, {failures} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
