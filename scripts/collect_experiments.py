"""Collect the measurements recorded in EXPERIMENTS.md.

Run with ``python scripts/collect_experiments.py``; it prints the
log-log runtime slopes, the code growth factor ``w`` and the global
round count ``r`` for the Section 6 scaling families, and wall times of
the Table 1/2 analyses at increasing program sizes.
"""

from __future__ import annotations

import math
import time
from typing import Callable, List, Tuple

from repro.core import pde, pfe
from repro.dataflow.dead import analyze_dead
from repro.dataflow.delay import analyze_delayability
from repro.dataflow.faint import analyze_faint
from repro.ir.splitting import split_critical_edges
from repro.workloads import diamond_chain, loop_chain, random_structured_program


def log_log_slope(points: List[Tuple[float, float]]) -> float:
    xs = [math.log(x) for x, _ in points]
    ys = [math.log(max(y, 1e-9)) for _, y in points]
    n = len(points)
    mean_x, mean_y = sum(xs) / n, sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var = sum((x - mean_x) ** 2 for x in xs)
    return cov / var


def sweep(optimizer: Callable, make: Callable, parameters, repetitions: int = 3):
    rows = []
    for parameter in parameters:
        graph = make(parameter)
        times = []
        result = None
        for _ in range(repetitions):
            start = time.perf_counter()
            result = optimizer(graph)
            times.append(time.perf_counter() - start)
        rows.append(
            (
                parameter,
                graph.instruction_count(),
                min(times),
                result.stats.rounds,
                result.stats.code_growth_factor,
            )
        )
    return rows


def report_family(name: str, family: Callable, parameters) -> None:
    for label, optimizer in (("pde", pde), ("pfe", pfe)):
        rows = sweep(optimizer, family, parameters)
        slope = log_log_slope([(n, t) for _, n, t, _, _ in rows])
        print(f"{name} {label}: slope={slope:.2f}")
        for parameter, n, t, rounds, w in rows:
            print(
                f"   k={parameter:<4} i={n:<5} t={t * 1000:8.2f}ms "
                f"rounds={rounds:<3} w={w:.2f}"
            )


def main() -> None:
    report_family("diamond_chain", diamond_chain, (8, 16, 32, 64, 128))
    report_family("loop_chain", loop_chain, (4, 8, 16, 32, 64))

    rows = sweep(
        pde,
        lambda size: random_structured_program(seed=11, size=size, n_variables=6),
        (40, 80, 160, 320, 640),
    )
    slope = log_log_slope([(n, t) for _, n, t, _, _ in rows])
    print(f"random pde: slope={slope:.2f}")
    for parameter, n, t, rounds, w in rows:
        print(
            f"   size={parameter:<4} i={n:<5} t={t * 1000:8.2f}ms "
            f"rounds={rounds:<3} w={w:.2f}"
        )

    for size in (50, 200, 800, 3200):
        graph = split_critical_edges(
            random_structured_program(seed=7, size=size, n_variables=8)
        )
        timings = {}
        for label, run in (
            ("dead", lambda: analyze_dead(graph)),
            ("faint_slot", lambda: analyze_faint(graph, "slot")),
            ("faint_instr", lambda: analyze_faint(graph, "instruction")),
            ("faint_block", lambda: analyze_faint(graph, "block")),
            ("delay", lambda: analyze_delayability(graph)),
        ):
            start = time.perf_counter()
            run()
            timings[label] = (time.perf_counter() - start) * 1000
        shown = " ".join(f"{key}={value:.1f}ms" for key, value in timings.items())
        print(
            f"analyses size={size}: i={graph.instruction_count()} "
            f"blocks={len(graph.nodes())} {shown}"
        )


if __name__ == "__main__":
    main()
