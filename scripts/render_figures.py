"""Render every paper figure as Graphviz before/after pairs.

Writes ``figures_out/figNN_{before,after_pde[,after_pfe]}.dot``; turn
them into images with e.g. ``dot -Tpng -O figures_out/*.dot``.
"""

from __future__ import annotations

import os
import sys

from repro.core import pde, pfe
from repro.figures import ALL_FIGURES
from repro.ir.dot import to_dot


def main(out_dir: str = "figures_out") -> int:
    os.makedirs(out_dir, exist_ok=True)
    written = []
    for figure in ALL_FIGURES:
        slug = figure.number.replace("-", "_")
        before = figure.before()
        result = pde(before)
        pairs = [
            (f"fig{slug}_before", result.original, f"Figure {figure.number}: before"),
            (f"fig{slug}_after_pde", result.graph, f"Figure {figure.number}: after pde"),
        ]
        if figure.expected_pfe_text:
            pairs.append(
                (
                    f"fig{slug}_after_pfe",
                    pfe(before).graph,
                    f"Figure {figure.number}: after pfe",
                )
            )
        for name, graph, title in pairs:
            path = os.path.join(out_dir, f"{name}.dot")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(to_dot(graph, title=title))
            written.append(path)
    print(f"wrote {len(written)} dot files to {out_dir}/")
    return 0


if __name__ == "__main__":
    sys.exit(main(*sys.argv[1:]))
